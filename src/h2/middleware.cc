#include "h2/middleware.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "fs/path.h"
#include "h2/keys.h"

namespace h2 {

// ---------------------------------------------------------------------------
// The per-NameRing File Descriptor (§4.5).  Tracks this node's patch chain,
// the parsed-but-unmerged patches, and the node's local merged view of the
// ring, which is what the gossip step joins against to repair lost
// concurrent merges.
// ---------------------------------------------------------------------------
struct H2Middleware::Descriptor {
  PatchChain chain;
  bool chain_loaded = false;
  // Unmerged patches by patch number (the link-list of §3.3.2, step 1).
  std::map<std::uint64_t, NameRing> pending;
  // Local (possibly ahead-of-cloud) merged view.
  std::optional<NameRing> local;
  VirtualNanos local_version = 0;
};

namespace {

FileInfo InfoFromHead(const ObjectHead& head) {
  FileInfo info;
  auto it = head.metadata.find(std::string(kMetaKind));
  info.kind = (it != head.metadata.end() && it->second == kMetaKindDir)
                  ? EntryKind::kDirectory
                  : EntryKind::kFile;
  info.size = info.kind == EntryKind::kDirectory ? 0 : head.logical_size;
  info.created = head.created;
  info.modified = head.modified;
  return info;
}

ObjectValue MakeObject(std::string payload, std::string_view kind,
                       VirtualNanos now) {
  ObjectValue v = ObjectValue::FromString(std::move(payload), now);
  v.metadata[std::string(kMetaKind)] = std::string(kind);
  return v;
}

}  // namespace

H2Middleware::H2Middleware(ObjectCloud& cloud, std::uint32_t node_id,
                           H2Config config)
    : cloud_(cloud),
      node_(node_id),
      config_(config),
      minter_(node_id),
      resolve_cache_(config.resolve_cache_capacity,
                     config.ring_cache_capacity),
      intents_(cloud, node_id) {}

H2Middleware::~H2Middleware() = default;

// ---------------------------------------------------------------------------
// Accounts
// ---------------------------------------------------------------------------

SimClock& H2Middleware::ClockFor(const OpMeter& meter) const {
  SimClock* domain = meter.clock_domain();
  return domain != nullptr ? *domain : cloud_.clock();
}

Status H2Middleware::CreateAccount(std::string_view user, OpMeter& meter) {
  if (user.empty()) return Status::InvalidArgument("empty account name");
  const std::string key = AccountKey(user);
  if (cloud_.Exists(key, meter)) {
    return Status::AlreadyExists("account exists: " + std::string(user));
  }
  NamespaceId root;
  {
    H2MutexLock lock(mu_);
    root = minter_.Mint(ClockFor(meter).NowUnixMillis());
  }
  const VirtualNanos now = ClockFor(meter).Tick();
  // The root directory's (empty) NameRing goes first and the account
  // record last: the record is the commit point.  If the record PUT
  // fails, all that remains is an invisible orphan ring under a fresh
  // namespace, and the CREATE can simply be retried.
  H2_RETURN_IF_ERROR(
      cloud_.Put(NameRingKey(root), MakeObject("", "ring", now), meter));
  AccountRecord record{std::string(user), root, now};
  return cloud_.Put(key, MakeObject(record.Serialize(), "account", now),
                    meter);
}

Result<NamespaceId> H2Middleware::AccountRoot(std::string_view user,
                                              OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(ObjectValue obj, cloud_.Get(AccountKey(user), meter));
  H2_ASSIGN_OR_RETURN(AccountRecord record, AccountRecord::Parse(obj.payload));
  return record.root_ns;
}

Status H2Middleware::DeleteAccount(std::string_view user, OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(NamespaceId root, AccountRoot(user, meter));
  H2_RETURN_IF_ERROR(cloud_.Delete(AccountKey(user), meter));
  H2MutexLock lock(mu_);
  cleanup_queue_.push_back(root);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Lookup (§3.2)
// ---------------------------------------------------------------------------

Result<DirRecord> H2Middleware::LoadDirRecord(const NamespaceId& parent_ns,
                                              std::string_view name,
                                              OpMeter& meter) {
  VirtualNanos floor = 0;
  if (config_.resolve_cache) {
    H2MutexLock lock(mu_);
    if (auto cached =
            resolve_cache_.GetChild(parent_ns, std::string(name))) {
      return *cached;
    }
    floor = resolve_cache_.ChildFloor(parent_ns);  // fence before the GET
  }
  H2_ASSIGN_OR_RETURN(ObjectValue obj,
                      cloud_.Get(ChildKey(parent_ns, name), meter));
  auto it = obj.metadata.find(std::string(kMetaKind));
  if (it == obj.metadata.end() || it->second != kMetaKindDir) {
    return Status::NotADirectory("not a directory: " + std::string(name));
  }
  H2_ASSIGN_OR_RETURN(DirRecord record, DirRecord::Parse(obj.payload));
  if (config_.resolve_cache) {
    H2MutexLock lock(mu_);
    resolve_cache_.PutChild(parent_ns, std::string(name), record, floor);
  }
  return record;
}

Result<ObjectValue> H2Middleware::GetContentAt(const NamespaceId& ns,
                                               std::string_view name,
                                               VirtualNanos version,
                                               OpMeter& meter) {
  // Common case first: a live object whose last write predates the pin
  // IS the pinned content -- one GET, exactly the unversioned cost.  A
  // newer (or missing) live object means the original was overwritten or
  // deleted after the pin, and preserve-on-write kept a copy aside.
  Result<ObjectValue> live = cloud_.Get(ChildKey(ns, name), meter);
  if (live.ok() && live->modified <= version) return live;
  Result<ObjectValue> kept =
      cloud_.Get(PreservedKey(ns, name, version), meter);
  if (kept.ok()) return kept;
  // Never preserved (pin taken before preserve-on-write existed, or a
  // restart lost the pin hint): degrade to the shared live object.
  if (live.ok()) return live;
  return live.status();
}

Result<DirRecord> H2Middleware::LoadDirRecordAt(const NamespaceId& parent_ns,
                                                std::string_view name,
                                                VirtualNanos version,
                                                OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(ObjectValue obj,
                      GetContentAt(parent_ns, name, version, meter));
  auto it = obj.metadata.find(std::string(kMetaKind));
  if (it == obj.metadata.end() || it->second != kMetaKindDir) {
    return Status::NotADirectory("not a directory: " + std::string(name));
  }
  return DirRecord::Parse(obj.payload);
}

Status H2Middleware::PreserveForPins(const NamespaceId& ns,
                                     std::string_view name, OpMeter& meter) {
  {
    H2MutexLock lock(mu_);
    if (pinned_ns_.count(ns) == 0) return Status::Ok();
  }
  H2_ASSIGN_OR_RETURN(NameRing ring, LoadNameRing(ns, meter));
  if (ring.pin_count() == 0) return Status::Ok();
  for (const auto& [version, count] : ring.pins()) {
    if (HasPreservedHint(ns, version, name)) continue;
    // Only pins that can still see the current object need a copy: the
    // name must be live at the pinned version, and the first
    // post-pin overwrite is the one that preserves (later ones find the
    // hint set).
    Result<std::optional<RingTuple>> tuple = ring.FindAt(name, version);
    if (!tuple.ok() || !tuple->has_value() || (*tuple)->deleted) continue;
    Status copied = cloud_.Copy(ChildKey(ns, name),
                                PreservedKey(ns, name, version), meter);
    if (copied.code() == ErrorCode::kNotFound) continue;  // nothing live
    H2_RETURN_IF_ERROR(copied);
    H2MutexLock lock(mu_);
    preserved_hint_.emplace(ns, version, std::string(name));
    ++counters_.snapshot_content_preserved;
  }
  return Status::Ok();
}

bool H2Middleware::HasPreservedHint(const NamespaceId& ns,
                                    VirtualNanos version,
                                    std::string_view name) const {
  H2MutexLock lock(mu_);
  return preserved_hint_.count({ns, version, std::string(name)}) > 0;
}

Result<H2Middleware::DirHandle> H2Middleware::ResolveDir(
    const NamespaceId& root, std::string_view path, OpMeter& meter) {
  DirHandle handle{root, false, 0};
  for (auto component : PathComponents(path)) {
    // Inside a pinned view, records deleted or replaced after the pin
    // resolve to their preserved copies (and never poison the live
    // child cache).
    Result<DirRecord> record =
        handle.pinned
            ? LoadDirRecordAt(handle.ns, component, handle.version, meter)
            : LoadDirRecord(handle.ns, component, meter);
    if (!record.ok()) return record.status();
    handle.ns = record->ns;
    if (record->reference) {
      // A nested reference inside a pinned view pins an older snapshot;
      // the walk keeps the oldest version on the path.
      handle.version = handle.pinned
                           ? std::min(handle.version, record->ref_version)
                           : record->ref_version;
      handle.pinned = true;
    }
  }
  return handle;
}

Result<NamespaceId> H2Middleware::ResolvePath(const NamespaceId& root,
                                              std::string_view path,
                                              OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(DirHandle handle, ResolveDir(root, path, meter));
  return handle.ns;
}

Result<NamespaceId> H2Middleware::ResolveParent(
    const NamespaceId& root, std::string_view normalized_path,
    OpMeter& meter) {
  return ResolvePath(root, ParentPath(normalized_path), meter);
}

Result<NamespaceId> H2Middleware::ResolveDirForWrite(const NamespaceId& root,
                                                     std::string_view path,
                                                     OpMeter& meter) {
  NamespaceId current = root;
  for (auto component : PathComponents(path)) {
    H2_ASSIGN_OR_RETURN(DirRecord record,
                        LoadDirRecord(current, component, meter));
    if (record.reference) {
      H2_ASSIGN_OR_RETURN(
          current, MaterializeReference(current, component, record, meter));
    } else {
      current = record.ns;
    }
  }
  return current;
}

Result<NamespaceId> H2Middleware::ResolveParentForWrite(
    const NamespaceId& root, std::string_view normalized_path,
    OpMeter& meter) {
  return ResolveDirForWrite(root, ParentPath(normalized_path), meter);
}

Result<NameRing> H2Middleware::LoadNameRing(const NamespaceId& ns,
                                            OpMeter& meter) {
  if (config_.resolve_cache) {
    H2MutexLock lock(mu_);
    if (auto cached = resolve_cache_.GetRing(ns)) return *cached;
  }
  H2_ASSIGN_OR_RETURN(ObjectValue obj, cloud_.Get(NameRingKey(ns), meter));
  H2_ASSIGN_OR_RETURN(NameRing ring, NameRing::Parse(obj.payload));
  // Overlay this node's unmerged patches and its local merged view so the
  // middleware reads its own writes (free: in-memory joins).
  H2MutexLock lock(mu_);
  auto it = descriptors_.find(ns);
  if (it != descriptors_.end()) {
    const Descriptor& desc = *it->second;
    if (desc.local.has_value()) ring.Merge(*desc.local);
    for (const auto& [patch_no, patch] : desc.pending) ring.Merge(patch);
  }
  // Cached post-overlay.  The fill is self-validating: every event that
  // changes the stored ring or the overlay (patch submit, merge,
  // compaction, rumor) notes its version as the ring floor, and PutRing
  // admits the ring only if its dir_version has caught up.
  if (config_.resolve_cache) resolve_cache_.PutRing(ns, ring);
  // Observed pins arm preserve-on-write (cross-middleware clones and
  // post-restart recovery learn pin state from the stored ring).
  if (ring.pin_count() > 0) pinned_ns_.insert(ns);
  return ring;
}

Result<FileInfo> H2Middleware::StatRelative(const NamespaceId& ns,
                                            std::string_view name,
                                            OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(ObjectHead head, cloud_.Head(ChildKey(ns, name), meter));
  return InfoFromHead(head);
}

Result<FileInfo> H2Middleware::Stat(const NamespaceId& root,
                                    std::string_view path, OpMeter& meter) {
  if (path == "/") {
    FileInfo info;
    info.kind = EntryKind::kDirectory;
    return info;
  }
  H2_ASSIGN_OR_RETURN(DirHandle parent,
                      ResolveDir(root, ParentPath(path), meter));
  if (!parent.pinned) return StatRelative(parent.ns, BaseName(path), meter);
  // Inside a snapshot clone the O(1) HEAD is not enough: the child must
  // have existed at the pinned version, so consult the ring's history.
  return StatAtInDir(parent.ns, BaseName(path), parent.version, meter);
}

// ---------------------------------------------------------------------------
// File content
// ---------------------------------------------------------------------------

Status H2Middleware::WriteFile(const NamespaceId& root, std::string_view path,
                               FileBlob blob, OpMeter& meter) {
  if (path == "/") return Status::IsADirectory("cannot write to /");
  H2_ASSIGN_OR_RETURN(NamespaceId parent,
                      ResolveParentForWrite(root, path, meter));
  const std::string_view name = BaseName(path);
  const std::string key = ChildKey(parent, name);

  Result<ObjectHead> existing = cloud_.Head(key, meter);
  bool is_new = false;
  if (existing.ok()) {
    auto it = existing->metadata.find(std::string(kMetaKind));
    if (it != existing->metadata.end() && it->second == kMetaKindDir) {
      return Status::IsADirectory("is a directory: " + std::string(path));
    }
    // Overwrite in place: snapshot pins on this directory keep reading
    // the old bytes, so copy them aside first.
    H2_RETURN_IF_ERROR(PreserveForPins(parent, name, meter));
  } else if (existing.code() == ErrorCode::kNotFound) {
    is_new = true;
  } else {
    return existing.status();
  }

  // §3.3.3(b): while the content stream is in flight, merges on the parent
  // NameRing are blocked.
  {
    H2MutexLock lock(mu_);
    write_blocked_.insert(parent);
  }
  const VirtualNanos now = ClockFor(meter).Tick();
  ObjectValue value;
  value.payload = std::move(blob.data);
  value.logical_size = blob.logical_size;
  value.metadata[std::string(kMetaKind)] = std::string(kMetaKindFile);
  value.created = value.modified = now;
  Status put = cloud_.Put(key, std::move(value), meter);
  Status patch = Status::Ok();
  if (put.ok() && is_new) {
    patch = SubmitPatch(
        parent, RingTuple{std::string(name), now, EntryKind::kFile, false},
        meter);
  }
  {
    H2MutexLock lock(mu_);
    write_blocked_.erase(parent);
  }
  H2_RETURN_IF_ERROR(put);
  return patch;
}

Status H2Middleware::WriteFiles(const NamespaceId& root,
                                std::vector<BatchEntry> batch,
                                OpMeter& meter) {
  // Per-directory accumulation of the tuples to patch in.
  struct DirBatch {
    NamespaceId ns;
    std::vector<RingTuple> tuples;
  };
  std::map<std::string, DirBatch> by_parent;

  // Phase 1: resolve each distinct parent once, then probe every target
  // key's existence in one batch of HEADs.
  struct Pending {
    DirBatch* dir = nullptr;  // stable: std::map values don't move
    std::string key;
    std::string name;
  };
  std::vector<Pending> pending;
  pending.reserve(batch.size());
  std::vector<BatchOp> heads;
  heads.reserve(batch.size());
  for (const BatchEntry& entry : batch) {
    const std::string& path = entry.path;
    if (path == "/") return Status::IsADirectory("cannot write to /");
    const std::string parent_path = ParentPath(path);
    auto it = by_parent.find(parent_path);
    if (it == by_parent.end()) {
      H2_ASSIGN_OR_RETURN(NamespaceId parent,
                          ResolveDirForWrite(root, parent_path, meter));
      it = by_parent.emplace(parent_path, DirBatch{parent, {}}).first;
    }
    Pending p;
    p.dir = &it->second;
    p.name = std::string(BaseName(path));
    p.key = ChildKey(it->second.ns, p.name);
    heads.push_back(BatchOp::Head(p.key));
    pending.push_back(std::move(p));
  }
  const std::vector<BatchResult> existing =
      cloud_.ExecuteBatch(std::move(heads), meter);

  // Phase 2: validate positionally, then write every payload in one
  // batch of PUTs (timestamps minted in submission order).
  std::vector<BatchOp> puts;
  puts.reserve(batch.size());
  std::vector<bool> is_new(batch.size(), false);
  std::vector<VirtualNanos> stamped(batch.size(), 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const BatchResult& head = existing[i];
    if (head.ok()) {
      auto kind = head.head->metadata.find(std::string(kMetaKind));
      if (kind != head.head->metadata.end() &&
          kind->second == kMetaKindDir) {
        return Status::IsADirectory("is a directory: " + batch[i].path);
      }
    } else if (head.status.code() == ErrorCode::kNotFound) {
      is_new[i] = true;
    } else {
      return head.status;
    }
    if (!is_new[i]) {
      H2_RETURN_IF_ERROR(
          PreserveForPins(pending[i].dir->ns, pending[i].name, meter));
    }
    const VirtualNanos now = ClockFor(meter).Tick();
    stamped[i] = now;
    ObjectValue value;
    value.payload = std::move(batch[i].blob.data);
    value.logical_size = batch[i].blob.logical_size;
    value.metadata[std::string(kMetaKind)] = std::string(kMetaKindFile);
    value.created = value.modified = now;
    puts.push_back(BatchOp::Put(pending[i].key, std::move(value)));
  }
  const std::vector<BatchResult> written =
      cloud_.ExecuteBatch(std::move(puts), meter);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    H2_RETURN_IF_ERROR(written[i].status);
    if (is_new[i]) {
      pending[i].dir->tuples.push_back(RingTuple{
          std::move(pending[i].name), stamped[i], EntryKind::kFile, false});
    }
  }

  // One durable patch per touched directory.
  for (auto& [parent_path, dir_batch] : by_parent) {
    if (dir_batch.tuples.empty()) continue;
    H2_RETURN_IF_ERROR(
        SubmitPatchTuples(dir_batch.ns, std::move(dir_batch.tuples), meter));
  }
  return Status::Ok();
}

Result<FileBlob> H2Middleware::ReadFile(const NamespaceId& root,
                                        std::string_view path,
                                        OpMeter& meter) {
  if (path == "/") return Status::IsADirectory("cannot read /");
  H2_ASSIGN_OR_RETURN(DirHandle parent,
                      ResolveDir(root, ParentPath(path), meter));
  const std::string_view name = BaseName(path);
  ObjectValue obj;
  if (!parent.pinned) {
    H2_ASSIGN_OR_RETURN(obj, cloud_.Get(ChildKey(parent.ns, name), meter));
  } else {
    // Through a clone the name must have existed at the pinned version
    // (a file created in the source afterwards is invisible even to a
    // direct open), and the content read is version-aware.
    H2_ASSIGN_OR_RETURN(NameRing ring, LoadNameRing(parent.ns, meter));
    H2_ASSIGN_OR_RETURN(std::optional<RingTuple> tuple,
                        ring.FindAt(name, parent.version));
    if (!tuple.has_value() || tuple->deleted) {
      return Status::NotFound("not found at version: " + std::string(path));
    }
    if (tuple->kind == EntryKind::kDirectory) {
      return Status::IsADirectory("is a directory: " + std::string(path));
    }
    H2_ASSIGN_OR_RETURN(obj,
                        GetContentAt(parent.ns, name, parent.version, meter));
  }
  auto it = obj.metadata.find(std::string(kMetaKind));
  if (it != obj.metadata.end() && it->second == kMetaKindDir) {
    return Status::IsADirectory("is a directory: " + std::string(path));
  }
  return FileBlob{std::move(obj.payload), obj.logical_size};
}

Status H2Middleware::RemoveFile(const NamespaceId& root,
                                std::string_view path, OpMeter& meter) {
  if (path == "/") return Status::IsADirectory("cannot remove /");
  H2_ASSIGN_OR_RETURN(NamespaceId parent,
                      ResolveParentForWrite(root, path, meter));
  const std::string_view name = BaseName(path);
  const std::string key = ChildKey(parent, name);

  H2_ASSIGN_OR_RETURN(ObjectHead head, cloud_.Head(key, meter));
  auto it = head.metadata.find(std::string(kMetaKind));
  if (it != head.metadata.end() && it->second == kMetaKindDir) {
    return Status::IsADirectory("is a directory: " + std::string(path));
  }
  H2_RETURN_IF_ERROR(PreserveForPins(parent, name, meter));
  H2_RETURN_IF_ERROR(cloud_.Delete(key, meter));
  // Fake deletion (§3.3.3a): the tuple gains a Deleted tag via a patch.
  return SubmitPatch(
      parent, RingTuple{std::string(name), ClockFor(meter).Tick(),
                        EntryKind::kFile, /*deleted=*/true},
      meter);
}

// ---------------------------------------------------------------------------
// Directories
// ---------------------------------------------------------------------------

Status H2Middleware::Mkdir(const NamespaceId& root, std::string_view path,
                           OpMeter& meter) {
  if (path == "/") return Status::AlreadyExists("/");
  H2_ASSIGN_OR_RETURN(NamespaceId parent,
                      ResolveParentForWrite(root, path, meter));
  const std::string_view name = BaseName(path);
  const std::string key = ChildKey(parent, name);
  if (cloud_.Exists(key, meter)) {
    return Status::AlreadyExists("exists: " + std::string(path));
  }

  NamespaceId ns;
  VirtualNanos floor = 0;
  {
    H2MutexLock lock(mu_);
    ns = minter_.Mint(ClockFor(meter).NowUnixMillis());
    floor = resolve_cache_.ChildFloor(parent);  // fence before the PUTs
  }
  const VirtualNanos now = ClockFor(meter).Tick();
  DirRecord record{ns, parent, std::string(name), now};
  H2_RETURN_IF_ERROR(
      cloud_.Put(key, MakeObject(record.Serialize(), kMetaKindDir, now),
                 meter));
  H2_RETURN_IF_ERROR(
      cloud_.Put(NameRingKey(ns), MakeObject("", "ring", now), meter));
  if (config_.resolve_cache) {
    H2MutexLock lock(mu_);
    resolve_cache_.PutChild(parent, std::string(name), record, floor);
  }
  return SubmitPatch(
      parent,
      RingTuple{std::string(name), now, EntryKind::kDirectory, false}, meter);
}

Status H2Middleware::Rmdir(const NamespaceId& root, std::string_view path,
                           OpMeter& meter) {
  if (path == "/") return Status::InvalidArgument("cannot remove /");
  H2_ASSIGN_OR_RETURN(NamespaceId parent,
                      ResolveParentForWrite(root, path, meter));
  const std::string_view name = BaseName(path);
  H2_ASSIGN_OR_RETURN(DirRecord record, LoadDirRecord(parent, name, meter));

  H2_RETURN_IF_ERROR(PreserveForPins(parent, name, meter));
  H2_RETURN_IF_ERROR(cloud_.Delete(ChildKey(parent, name), meter));
  H2_RETURN_IF_ERROR(SubmitPatch(
      parent, RingTuple{std::string(name), ClockFor(meter).Tick(),
                        EntryKind::kDirectory, /*deleted=*/true},
      meter));
  H2MutexLock lock(mu_);
  if (record.reference) {
    // Removing a snapshot clone releases its pins on the (shared) source
    // subtree; the source's objects are never queued for deletion.
    unpin_queue_.push_back(
        UnpinEntry{record.ns, record.ref_version, /*recurse=*/true});
  } else {
    // The n files and sub-directories beneath are unreachable now; their
    // objects are reclaimed lazily (O(1) foreground, Table 1).  If the
    // namespace is pinned by a snapshot clone, cleanup parks it until the
    // last pin goes.
    cleanup_queue_.push_back(record.ns);
  }
  resolve_cache_.EraseChild(parent, std::string(name));
  return Status::Ok();
}

Status H2Middleware::Move(const NamespaceId& root, std::string_view from,
                          std::string_view to, OpMeter& meter) {
  if (from == "/") return Status::InvalidArgument("cannot move /");
  if (to == "/") return Status::AlreadyExists("destination exists: /");
  if (from == to) return Status::Ok();
  if (IsWithin(to, from)) {
    return Status::InvalidArgument("cannot move a directory into itself");
  }
  H2_ASSIGN_OR_RETURN(NamespaceId from_parent,
                      ResolveParentForWrite(root, from, meter));
  const std::string_view from_name = BaseName(from);
  const std::string from_key = ChildKey(from_parent, from_name);
  // Source existence takes error precedence over destination conflicts.
  H2_ASSIGN_OR_RETURN(ObjectValue source, cloud_.Get(from_key, meter));
  H2_ASSIGN_OR_RETURN(NamespaceId to_parent,
                      ResolveParentForWrite(root, to, meter));
  const std::string_view to_name = BaseName(to);
  const std::string to_key = ChildKey(to_parent, to_name);

  if (cloud_.Exists(to_key, meter)) {
    return Status::AlreadyExists("destination exists: " + std::string(to));
  }
  auto kind_it = source.metadata.find(std::string(kMetaKind));
  const bool is_dir =
      kind_it != source.metadata.end() && kind_it->second == kMetaKindDir;

  const VirtualNanos now = ClockFor(meter).Tick();
  const VirtualNanos insert_ts = ClockFor(meter).Tick();
  const EntryKind kind = is_dir ? EntryKind::kDirectory : EntryKind::kFile;

  // Journal the multi-object sequence so a crash mid-move can be
  // re-driven by RecoverIntents() (h2/intent_log.h).
  std::uint64_t intent_id = 0;
  if (config_.move_intent_log) {
    KvRecord intent;
    intent.Set("op", "move");
    intent.Set("kind", is_dir ? "dir" : "file");
    intent.Set("from_parent", from_parent.ToString());
    intent.Set("to_parent", to_parent.ToString());
    intent.Set("from_name", from_name);
    intent.Set("to_name", to_name);
    intent.SetInt("delete_ts", now);
    intent.SetInt("insert_ts", insert_ts);
    H2_ASSIGN_OR_RETURN(intent_id, intents_.Begin(intent, meter));
  }

  if (is_dir) {
    // Rewriting the directory record is the whole move: the subtree stays
    // keyed by the directory's own namespace.  This is H2's O(1) MOVE.
    // A reference record moves the same way -- its referent and pinned
    // version ride along in the rewritten record.
    H2_ASSIGN_OR_RETURN(DirRecord record, DirRecord::Parse(source.payload));
    record.parent_ns = to_parent;
    record.name = std::string(to_name);
    VirtualNanos floor = 0;
    {
      H2MutexLock lock(mu_);
      floor = resolve_cache_.ChildFloor(to_parent);  // fence before the PUT
    }
    H2_RETURN_IF_ERROR(cloud_.Put(
        to_key, MakeObject(record.Serialize(), kMetaKindDir, now), meter));
    H2_RETURN_IF_ERROR(PreserveForPins(from_parent, from_name, meter));
    H2_RETURN_IF_ERROR(cloud_.Delete(from_key, meter));
    H2MutexLock lock(mu_);
    resolve_cache_.EraseChild(from_parent, std::string(from_name));
    if (config_.resolve_cache) {
      resolve_cache_.PutChild(to_parent, std::string(to_name), record, floor);
    }
  } else {
    H2_RETURN_IF_ERROR(cloud_.Copy(from_key, to_key, meter));
    H2_RETURN_IF_ERROR(PreserveForPins(from_parent, from_name, meter));
    H2_RETURN_IF_ERROR(cloud_.Delete(from_key, meter));
  }

  H2_RETURN_IF_ERROR(SubmitPatch(
      from_parent,
      RingTuple{std::string(from_name), now, kind, /*deleted=*/true}, meter));
  H2_RETURN_IF_ERROR(SubmitPatch(
      to_parent, RingTuple{std::string(to_name), insert_ts, kind, false},
      meter));
  if (config_.move_intent_log) {
    H2_RETURN_IF_ERROR(intents_.Commit(intent_id, meter));
  }
  return Status::Ok();
}

std::size_t H2Middleware::RecoverIntents() {
  OpMeter meter;
  meter.SetZone(zone_);
  std::size_t completed = 0;
  Result<std::vector<std::pair<std::uint64_t, KvRecord>>> open =
      intents_.Open(meter);
  if (!open.ok()) return 0;
  for (auto& [id, record] : *open) {
    if (record.Get("op") != "move") {
      (void)intents_.Commit(id, meter);
      continue;
    }
    auto from_parent = NamespaceId::Parse(record.Get("from_parent"));
    auto to_parent = NamespaceId::Parse(record.Get("to_parent"));
    auto delete_ts = record.GetInt("delete_ts");
    auto insert_ts = record.GetInt("insert_ts");
    if (!from_parent.ok() || !to_parent.ok() || !delete_ts.ok() ||
        !insert_ts.ok()) {
      (void)intents_.Commit(id, meter);
      continue;
    }
    const std::string from_name = record.Get("from_name");
    const std::string to_name = record.Get("to_name");
    const bool is_dir = record.Get("kind") == "dir";
    const std::string from_key = ChildKey(*from_parent, from_name);
    const std::string to_key = ChildKey(*to_parent, to_name);

    // Redo, idempotently: ensure the destination object exists, drop the
    // source object, re-submit both patches (last-writer-wins makes
    // duplicate tuples merge to the same ring state).
    if (!cloud_.Exists(to_key, meter)) {
      Result<ObjectValue> source = cloud_.Get(from_key, meter);
      if (source.ok()) {
        if (is_dir) {
          Result<DirRecord> dir = DirRecord::Parse(source->payload);
          if (dir.ok()) {
            dir->parent_ns = *to_parent;
            dir->name = to_name;
            (void)cloud_.Put(to_key,
                             MakeObject(dir->Serialize(), kMetaKindDir,
                                        ClockFor(meter).Tick()),
                             meter);
          }
        } else {
          (void)cloud_.Copy(from_key, to_key, meter);
        }
      }
    }
    (void)cloud_.Delete(from_key, meter);
    {
      // The redo may have rewritten either parent's child set behind any
      // cached record; drop both precisely.
      H2MutexLock lock(mu_);
      resolve_cache_.EraseChild(*from_parent, from_name);
      resolve_cache_.EraseChild(*to_parent, to_name);
    }
    const EntryKind kind =
        is_dir ? EntryKind::kDirectory : EntryKind::kFile;
    (void)SubmitPatch(*from_parent,
                      RingTuple{from_name, *delete_ts, kind, true}, meter);
    (void)SubmitPatch(*to_parent,
                      RingTuple{to_name, *insert_ts, kind, false}, meter);
    if (intents_.Commit(id, meter).ok()) ++completed;
  }
  H2MutexLock lock(mu_);
  maintenance_meter_.Merge(meter.cost());
  return completed;
}

Result<std::vector<DirEntry>> H2Middleware::BuildEntries(
    const NamespaceId& ns, const std::vector<RingTuple>& children,
    ListDetail detail, OpMeter& meter) {
  std::vector<DirEntry> entries;
  entries.reserve(children.size());

  if (detail == ListDetail::kNamesOnly) {
    // O(1): one NameRing read regardless of child count.
    for (const RingTuple& t : children) {
      entries.push_back(DirEntry{t.name, t.kind, 0, 0});
    }
    return entries;
  }

  // Detailed LIST: the per-child metadata fetches go out as one batch on
  // the proxy's pipeline -- O(m) with a wave-priced constant (§2).
  std::vector<BatchOp> heads;
  heads.reserve(children.size());
  for (const RingTuple& t : children) {
    heads.push_back(BatchOp::Head(ChildKey(ns, t.name)));
  }
  const std::vector<BatchResult> results = cloud_.ExecuteBatch(
      std::move(heads), meter, BatchOptions{config_.list_batch_width});
  for (std::size_t i = 0; i < children.size(); ++i) {
    const RingTuple& t = children[i];
    const BatchResult& head = results[i];
    if (head.status.code() == ErrorCode::kNotFound) continue;  // mid-cleanup
    if (!head.ok()) return head.status;
    DirEntry entry;
    entry.name = t.name;
    entry.kind = t.kind;
    entry.size =
        t.kind == EntryKind::kDirectory ? 0 : head.head->logical_size;
    entry.modified = head.head->modified;
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<std::vector<DirEntry>> H2Middleware::List(const NamespaceId& root,
                                                 std::string_view path,
                                                 ListDetail detail,
                                                 OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(DirHandle dir, ResolveDir(root, path, meter));
  H2_ASSIGN_OR_RETURN(NameRing ring, LoadNameRing(dir.ns, meter));
  std::vector<RingTuple> children;
  if (dir.pinned) {
    // A clone view never compacts through its reference (the ring belongs
    // to the source); it lists the state at the pinned version.
    Result<std::vector<RingTuple>> at = ring.LiveChildrenAt(dir.version);
    children = at.ok() ? *std::move(at) : ring.LiveChildren();
  } else {
    H2_RETURN_IF_ERROR(MaybeCompact(dir.ns, ring, meter));
    children = ring.LiveChildren();
  }
  return BuildEntries(dir.ns, children, detail, meter);
}

Result<H2Middleware::Page> H2Middleware::ListPaged(
    const NamespaceId& root, std::string_view path, ListDetail detail,
    std::string_view start_after, std::size_t limit, OpMeter& meter) {
  if (limit == 0) return Status::InvalidArgument("limit must be positive");
  H2_ASSIGN_OR_RETURN(DirHandle dir, ResolveDir(root, path, meter));
  const NamespaceId ns = dir.ns;
  H2_ASSIGN_OR_RETURN(NameRing ring, LoadNameRing(ns, meter));
  std::vector<RingTuple> children;
  if (dir.pinned) {
    Result<std::vector<RingTuple>> at = ring.LiveChildrenAt(dir.version);
    children = at.ok() ? *std::move(at) : ring.LiveChildren();
  } else {
    H2_RETURN_IF_ERROR(MaybeCompact(ns, ring, meter));
    children = ring.LiveChildren();
  }

  Page page;
  // LiveChildren is alphabetical: find the window after the marker.
  auto it = children.begin();
  if (!start_after.empty()) {
    it = std::upper_bound(children.begin(), children.end(), start_after,
                          [](std::string_view marker, const RingTuple& t) {
                            return marker < t.name;
                          });
  }
  if (detail != ListDetail::kDetailed) {
    for (; it != children.end() && page.entries.size() < limit; ++it) {
      page.entries.push_back(DirEntry{it->name, it->kind, 0, 0});
    }
  } else {
    // Detailed metadata only for the page: batch a page's worth of HEADs
    // at a time; children deleted mid-cleanup (NotFound) don't consume
    // the limit, so top up with further batches until the page fills.
    while (it != children.end() && page.entries.size() < limit) {
      std::vector<BatchOp> heads;
      auto chunk_end = it;
      for (std::size_t n = page.entries.size();
           n < limit && chunk_end != children.end(); ++n, ++chunk_end) {
        heads.push_back(BatchOp::Head(ChildKey(ns, chunk_end->name)));
      }
      const std::vector<BatchResult> results = cloud_.ExecuteBatch(
          std::move(heads), meter, BatchOptions{config_.list_batch_width});
      for (const BatchResult& head : results) {
        const RingTuple& t = *it++;
        if (head.status.code() == ErrorCode::kNotFound) continue;
        if (!head.ok()) return head.status;
        DirEntry entry;
        entry.name = t.name;
        entry.kind = t.kind;
        entry.size =
            t.kind == EntryKind::kDirectory ? 0 : head.head->logical_size;
        entry.modified = head.head->modified;
        page.entries.push_back(std::move(entry));
        if (page.entries.size() == limit) break;
      }
    }
  }
  page.truncated = it != children.end();
  if (!page.entries.empty()) page.next_marker = page.entries.back().name;
  return page;
}

Status H2Middleware::CopyTree(const NamespaceId& src_ns,
                              const NamespaceId& dst_ns, OpMeter& meter,
                              VirtualNanos at) {
  H2_ASSIGN_OR_RETURN(NameRing src_ring, LoadNameRing(src_ns, meter));
  NameRing dst_ring;
  std::vector<RingTuple> children;
  if (at > 0) {
    // Copying a pinned view (COPY of a snapshot clone): the child set and
    // the file bytes are the ones frozen at `at`.
    Result<std::vector<RingTuple>> view = src_ring.LiveChildrenAt(at);
    children = view.ok() ? *std::move(view) : src_ring.LiveChildren();
  } else {
    children = src_ring.LiveChildren();
  }

  // Phase 1: per-file server-side COPYs, one batch for the whole level.
  std::vector<BatchOp> copies;
  std::vector<const RingTuple*> files;
  for (const RingTuple& child : children) {
    if (child.kind == EntryKind::kDirectory) continue;
    const std::string src =
        at > 0 && HasPreservedHint(src_ns, at, child.name)
            ? PreservedKey(src_ns, child.name, at)
            : ChildKey(src_ns, child.name);
    copies.push_back(BatchOp::Copy(src, ChildKey(dst_ns, child.name)));
    files.push_back(&child);
  }
  const std::vector<BatchResult> copied =
      cloud_.ExecuteBatch(std::move(copies), meter);
  for (std::size_t i = 0; i < files.size(); ++i) {
    // A source file deleted mid-copy (NotFound) is simply skipped.
    if (copied[i].status.code() == ErrorCode::kNotFound) continue;
    H2_RETURN_IF_ERROR(copied[i].status);
    dst_ring.Apply(RingTuple{files[i]->name, ClockFor(meter).Tick(),
                             EntryKind::kFile, false});
  }

  // Phase 2: load each subdirectory's record, mint its destination
  // namespace, and write all destination dir records as one batch.
  struct SubdirCopy {
    const RingTuple* tuple = nullptr;
    NamespaceId src_child;
    NamespaceId dst_child;
    VirtualNanos now = 0;
    VirtualNanos at = 0;  // pinned view to recurse into (0 = live)
  };
  std::vector<SubdirCopy> subdirs;
  std::vector<BatchOp> record_puts;
  for (const RingTuple& child : children) {
    if (child.kind != EntryKind::kDirectory) continue;
    Result<DirRecord> record =
        at > 0 ? LoadDirRecordAt(src_ns, child.name, at, meter)
               : LoadDirRecord(src_ns, child.name, meter);
    if (record.code() == ErrorCode::kNotFound) continue;
    if (!record.ok()) return record.status();
    SubdirCopy sub;
    sub.tuple = &child;
    sub.src_child = record->ns;
    // A reference child freezes its own (possibly older) version; a real
    // child inside a pinned view inherits the view's version.
    sub.at = record->reference ? record->ref_version : at;
    {
      H2MutexLock lock(mu_);
      sub.dst_child = minter_.Mint(ClockFor(meter).NowUnixMillis());
    }
    sub.now = ClockFor(meter).Tick();
    DirRecord dst_record{sub.dst_child, dst_ns, child.name, sub.now};
    record_puts.push_back(BatchOp::Put(
        ChildKey(dst_ns, child.name),
        MakeObject(dst_record.Serialize(), kMetaKindDir, sub.now)));
    subdirs.push_back(sub);
  }
  const std::vector<BatchResult> put_results =
      cloud_.ExecuteBatch(std::move(record_puts), meter);
  for (std::size_t i = 0; i < subdirs.size(); ++i) {
    H2_RETURN_IF_ERROR(put_results[i].status);
    dst_ring.Apply(RingTuple{subdirs[i].tuple->name, subdirs[i].now,
                             EntryKind::kDirectory, false});
  }

  // Phase 3: recurse into the copied subtrees.
  for (const SubdirCopy& sub : subdirs) {
    H2_RETURN_IF_ERROR(CopyTree(sub.src_child, sub.dst_child, meter, sub.at));
  }

  const VirtualNanos now = ClockFor(meter).Tick();
  return cloud_.Put(NameRingKey(dst_ns),
                    MakeObject(dst_ring.Serialize(), "ring", now), meter);
}

Status H2Middleware::Copy(const NamespaceId& root, std::string_view from,
                          std::string_view to, OpMeter& meter) {
  if (from == "/") return Status::InvalidArgument("cannot copy /");
  if (to == "/") return Status::AlreadyExists("destination exists: /");
  if (from == to || IsWithin(to, from)) {
    return Status::InvalidArgument("cannot copy a directory into itself");
  }
  H2_ASSIGN_OR_RETURN(DirHandle from_dir,
                      ResolveDir(root, ParentPath(from), meter));
  const NamespaceId from_parent = from_dir.ns;
  const std::string_view from_name = BaseName(from);
  std::string from_key = ChildKey(from_parent, from_name);
  Result<ObjectHead> head_result = cloud_.Head(from_key, meter);
  if (from_dir.pinned) {
    // Copying out of a clone: the source is the view frozen at the pin,
    // not the live object (which may be newer, renamed, or gone).
    H2_ASSIGN_OR_RETURN(NameRing ring, LoadNameRing(from_parent, meter));
    H2_ASSIGN_OR_RETURN(std::optional<RingTuple> tuple,
                        ring.FindAt(from_name, from_dir.version));
    if (!tuple.has_value() || tuple->deleted) {
      return Status::NotFound("not found at version: " + std::string(from));
    }
    if (!head_result.ok() || head_result->modified > from_dir.version) {
      Result<ObjectHead> kept = cloud_.Head(
          PreservedKey(from_parent, from_name, from_dir.version), meter);
      if (kept.ok()) {
        from_key = PreservedKey(from_parent, from_name, from_dir.version);
        head_result = kept;
      }
    }
  }
  H2_RETURN_IF_ERROR(head_result.status());
  const ObjectHead head = *std::move(head_result);
  H2_ASSIGN_OR_RETURN(NamespaceId to_parent,
                      ResolveParentForWrite(root, to, meter));
  const std::string_view to_name = BaseName(to);
  const std::string to_key = ChildKey(to_parent, to_name);

  if (cloud_.Exists(to_key, meter)) {
    return Status::AlreadyExists("destination exists: " + std::string(to));
  }
  auto kind_it = head.metadata.find(std::string(kMetaKind));
  const bool is_dir =
      kind_it != head.metadata.end() && kind_it->second == kMetaKindDir;

  const VirtualNanos now = ClockFor(meter).Tick();
  if (!is_dir) {
    H2_RETURN_IF_ERROR(cloud_.Copy(from_key, to_key, meter));
    return SubmitPatch(
        to_parent,
        RingTuple{std::string(to_name), now, EntryKind::kFile, false}, meter);
  }

  // Directory copy must mint fresh namespaces for the whole subtree --
  // unlike MOVE, this is inherently O(n) (Table 1).  The subtree is
  // copied BEFORE the destination record is written: a crash mid-copy
  // then leaves only invisible orphan objects (fresh namespaces no path
  // reaches), never a half-populated visible directory.
  H2_ASSIGN_OR_RETURN(
      DirRecord src_record,
      from_dir.pinned
          ? LoadDirRecordAt(from_parent, from_name, from_dir.version, meter)
          : LoadDirRecord(from_parent, from_name, meter));
  NamespaceId dst_ns;
  {
    H2MutexLock lock(mu_);
    dst_ns = minter_.Mint(ClockFor(meter).NowUnixMillis());
  }
  // COPY of a snapshot clone (or inside one) materializes the pinned
  // view into a real, independent tree.
  const VirtualNanos copy_at =
      src_record.reference
          ? src_record.ref_version
          : (from_dir.pinned ? from_dir.version : 0);
  H2_RETURN_IF_ERROR(CopyTree(src_record.ns, dst_ns, meter, copy_at));
  DirRecord dst_record{dst_ns, to_parent, std::string(to_name), now};
  H2_RETURN_IF_ERROR(cloud_.Put(
      to_key, MakeObject(dst_record.Serialize(), kMetaKindDir, now), meter));
  return SubmitPatch(
      to_parent,
      RingTuple{std::string(to_name), now, EntryKind::kDirectory, false},
      meter);
}

// ---------------------------------------------------------------------------
// Versioned reads & snapshot clones (DESIGN.md §13)
// ---------------------------------------------------------------------------

Result<std::vector<DirEntry>> H2Middleware::ListAt(const NamespaceId& root,
                                                   std::string_view path,
                                                   VirtualNanos version,
                                                   ListDetail detail,
                                                   OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(DirHandle dir, ResolveDir(root, path, meter));
  H2_ASSIGN_OR_RETURN(NameRing ring, LoadNameRing(dir.ns, meter));
  const VirtualNanos at =
      dir.pinned ? std::min(version, dir.version) : version;
  H2_ASSIGN_OR_RETURN(std::vector<RingTuple> children,
                      ring.LiveChildrenAt(at));
  {
    H2MutexLock lock(mu_);
    ++counters_.versioned_reads;
  }
  return BuildEntries(dir.ns, children, detail, meter);
}

Result<FileInfo> H2Middleware::StatAtInDir(const NamespaceId& ns,
                                           std::string_view name,
                                           VirtualNanos version,
                                           OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(NameRing ring, LoadNameRing(ns, meter));
  H2_ASSIGN_OR_RETURN(std::optional<RingTuple> tuple,
                      ring.FindAt(name, version));
  {
    H2MutexLock lock(mu_);
    ++counters_.versioned_reads;
  }
  if (!tuple.has_value() || tuple->deleted) {
    return Status::NotFound("not found at version: " + std::string(name));
  }
  // Object times tell which generation answers: the live object while
  // its last write predates `version`, else the copy preserve-on-write
  // kept for this pin, else (never preserved) the live object, else the
  // tuple itself.
  Result<FileInfo> live = StatRelative(ns, name, meter);
  if (live.ok() && live->kind == tuple->kind &&
      live->modified <= version) {
    return *live;
  }
  Result<ObjectHead> kept =
      cloud_.Head(PreservedKey(ns, name, version), meter);
  if (kept.ok()) return InfoFromHead(*kept);
  if (live.ok() && live->kind == tuple->kind) return *live;
  FileInfo info;
  info.kind = tuple->kind;
  info.size = 0;
  info.created = info.modified = tuple->timestamp;
  return info;
}

Result<FileInfo> H2Middleware::StatAt(const NamespaceId& root,
                                      std::string_view path,
                                      VirtualNanos version, OpMeter& meter) {
  if (path == "/") {
    FileInfo info;
    info.kind = EntryKind::kDirectory;
    return info;
  }
  H2_ASSIGN_OR_RETURN(DirHandle parent,
                      ResolveDir(root, ParentPath(path), meter));
  const VirtualNanos at =
      parent.pinned ? std::min(version, parent.version) : version;
  return StatAtInDir(parent.ns, BaseName(path), at, meter);
}

Result<VirtualNanos> H2Middleware::DirVersion(const NamespaceId& root,
                                              std::string_view path,
                                              OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(DirHandle dir, ResolveDir(root, path, meter));
  if (dir.pinned) return dir.version;
  H2_ASSIGN_OR_RETURN(NameRing ring, LoadNameRing(dir.ns, meter));
  return ring.dir_version();
}

Status H2Middleware::PinTree(
    const NamespaceId& ns, VirtualNanos version, OpMeter& meter,
    std::set<std::pair<NamespaceId, VirtualNanos>>& visited) {
  // One pin per (namespace, version) reachable from the clone root: a
  // reference cycle reaches the same pair twice and must not double-pin
  // it, or the release walk (which consumes one pin per visit) would
  // leak the second pin forever.
  if (!visited.insert({ns, version}).second) return Status::Ok();
  // Pin the ring by read-modify-write, then fan out into the
  // subdirectories of the pinned view.  No per-file work: this is the
  // O(1)-per-directory cost of SnapshotClone.  The read half goes
  // through LoadNameRing -- the merged view with this node's overlay,
  // served from the resolve cache when warm, and a superset of the
  // stored ring that merge would produce anyway (Merge is idempotent,
  // so persisting the overlay early is harmless) -- which keeps the pin
  // walk off the cloud read path entirely on the common warm-cache
  // clone.
  H2_ASSIGN_OR_RETURN(NameRing stored, LoadNameRing(ns, meter));
  stored.Pin(version);
  H2_RETURN_IF_ERROR(cloud_.Put(
      NameRingKey(ns),
      MakeObject(stored.Serialize(), "ring", ClockFor(meter).Tick()), meter));
  {
    H2MutexLock lock(mu_);
    ++counters_.rings_pinned;
    pinned_ns_.insert(ns);  // arms preserve-on-write for this namespace
    // Keep the cache byte-equal with what we just persisted; the write
    // did not advance dir_version, so the floor check admits it.
    if (config_.resolve_cache) resolve_cache_.PutRing(ns, stored);
  }
  // The clone freezes the state at `version`, so only subdirectories
  // visible at `version` need pins (mirrors the unpin walk, including
  // its current-view fallback for folded history).
  Result<std::vector<RingTuple>> at = stored.LiveChildrenAt(version);
  const std::vector<RingTuple> children =
      at.ok() ? *std::move(at) : stored.LiveChildren();
  for (const RingTuple& child : children) {
    if (child.kind != EntryKind::kDirectory) continue;
    Result<DirRecord> record = LoadDirRecord(ns, child.name, meter);
    if (record.code() == ErrorCode::kNotFound) continue;  // mid-cleanup
    if (!record.ok()) return record.status();
    // A nested reference is re-pinned at its own (older) version so the
    // shared subtree's counts stay symmetric with the unpin walk.
    const VirtualNanos child_version =
        record->reference ? record->ref_version : version;
    H2_RETURN_IF_ERROR(PinTree(record->ns, child_version, meter, visited));
  }
  return Status::Ok();
}

Status H2Middleware::SnapshotClone(const NamespaceId& root,
                                   std::string_view from, std::string_view to,
                                   OpMeter& meter) {
  if (from == "/") return Status::InvalidArgument("cannot clone /");
  if (to == "/") return Status::AlreadyExists("destination exists: /");
  if (from == to || IsWithin(to, from)) {
    return Status::InvalidArgument("cannot clone a directory into itself");
  }
  H2_ASSIGN_OR_RETURN(NamespaceId from_parent,
                      ResolveParent(root, from, meter));
  const std::string_view from_name = BaseName(from);
  H2_ASSIGN_OR_RETURN(DirRecord src_record,
                      LoadDirRecord(from_parent, from_name, meter));
  H2_ASSIGN_OR_RETURN(NamespaceId to_parent,
                      ResolveParentForWrite(root, to, meter));
  const std::string_view to_name = BaseName(to);
  const std::string to_key = ChildKey(to_parent, to_name);
  if (cloud_.Exists(to_key, meter)) {
    return Status::AlreadyExists("destination exists: " + std::string(to));
  }

  // Cloning a clone shares the original source at its pinned version;
  // cloning a live directory pins the present.
  const VirtualNanos version = src_record.reference
                                   ? src_record.ref_version
                                   : ClockFor(meter).Tick();
  std::set<std::pair<NamespaceId, VirtualNanos>> visited;
  H2_RETURN_IF_ERROR(PinTree(src_record.ns, version, meter, visited));

  const VirtualNanos now = ClockFor(meter).Tick();
  DirRecord clone{src_record.ns, to_parent, std::string(to_name), now};
  clone.reference = true;
  clone.ref_version = version;
  H2_RETURN_IF_ERROR(cloud_.Put(
      to_key, MakeObject(clone.Serialize(), kMetaKindDir, now), meter));
  H2_RETURN_IF_ERROR(SubmitPatch(
      to_parent,
      RingTuple{std::string(to_name), now, EntryKind::kDirectory, false},
      meter));
  H2MutexLock lock(mu_);
  ++counters_.snapshot_clones;
  return Status::Ok();
}

Result<NamespaceId> H2Middleware::MaterializeReference(
    const NamespaceId& parent_ns, std::string_view name,
    const DirRecord& record, OpMeter& meter) {
  // First mutation inside the clone: turn the reference at (parent_ns,
  // name) into a real directory holding the pinned view.  Files are
  // copied (content becomes independent of the source from here on);
  // subdirectories stay lazy as nested references at the same pinned
  // version, inheriting the pins the clone already holds on them.
  H2_ASSIGN_OR_RETURN(NameRing src_ring, LoadNameRing(record.ns, meter));
  Result<std::vector<RingTuple>> at =
      src_ring.LiveChildrenAt(record.ref_version);
  const std::vector<RingTuple> view =
      at.ok() ? *std::move(at) : src_ring.LiveChildren();

  NamespaceId new_ns;
  {
    H2MutexLock lock(mu_);
    new_ns = minter_.Mint(ClockFor(meter).NowUnixMillis());
  }
  NameRing new_ring;

  std::vector<BatchOp> copies;
  std::vector<const RingTuple*> files;
  for (const RingTuple& child : view) {
    if (child.kind == EntryKind::kDirectory) continue;
    // A file overwritten/deleted in the source after the pin was copied
    // aside by preserve-on-write; materialize from that copy.
    const std::string src =
        HasPreservedHint(record.ns, record.ref_version, child.name)
            ? PreservedKey(record.ns, child.name, record.ref_version)
            : ChildKey(record.ns, child.name);
    copies.push_back(BatchOp::Copy(src, ChildKey(new_ns, child.name)));
    files.push_back(&child);
  }
  const std::vector<BatchResult> copied =
      cloud_.ExecuteBatch(std::move(copies), meter);
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (copied[i].status.code() == ErrorCode::kNotFound) continue;
    H2_RETURN_IF_ERROR(copied[i].status);
    new_ring.Apply(*files[i]);
  }

  std::vector<BatchOp> record_puts;
  std::vector<const RingTuple*> subdirs;
  for (const RingTuple& child : view) {
    if (child.kind != EntryKind::kDirectory) continue;
    Result<DirRecord> sub =
        LoadDirRecordAt(record.ns, child.name, record.ref_version, meter);
    if (sub.code() == ErrorCode::kNotFound) continue;
    if (!sub.ok()) return sub.status();
    DirRecord nested{sub->ns, new_ns, child.name,
                     ClockFor(meter).Tick()};
    nested.reference = true;
    nested.ref_version =
        sub->reference ? sub->ref_version : record.ref_version;
    record_puts.push_back(
        BatchOp::Put(ChildKey(new_ns, child.name),
                     MakeObject(nested.Serialize(), kMetaKindDir,
                                nested.created)));
    subdirs.push_back(&child);
  }
  const std::vector<BatchResult> put_results =
      cloud_.ExecuteBatch(std::move(record_puts), meter);
  for (std::size_t i = 0; i < subdirs.size(); ++i) {
    H2_RETURN_IF_ERROR(put_results[i].status);
    new_ring.Apply(*subdirs[i]);
  }

  new_ring.BumpVersion(record.ref_version);
  const VirtualNanos now = ClockFor(meter).Tick();
  H2_RETURN_IF_ERROR(cloud_.Put(NameRingKey(new_ns),
                                MakeObject(new_ring.Serialize(), "ring", now),
                                meter));
  DirRecord real{new_ns, parent_ns, std::string(name), now};
  H2_RETURN_IF_ERROR(
      cloud_.Put(ChildKey(parent_ns, name),
                 MakeObject(real.Serialize(), kMetaKindDir, now), meter));
  {
    H2MutexLock lock(mu_);
    // Only this level's pin is released -- the nested references keep the
    // pins on their subtrees.  The release itself is lazy (it walks no
    // further than this ring).
    unpin_queue_.push_back(
        UnpinEntry{record.ns, record.ref_version, /*recurse=*/false});
    resolve_cache_.EraseChild(parent_ns, std::string(name));
    ++counters_.snapshot_cow_materializations;
  }
  return new_ns;
}

// ---------------------------------------------------------------------------
// NameRing maintenance (§3.3)
// ---------------------------------------------------------------------------

H2Middleware::Descriptor& H2Middleware::DescriptorFor(const NamespaceId& ns) {
  auto it = descriptors_.find(ns);
  if (it == descriptors_.end()) {
    it = descriptors_.emplace(ns, std::make_unique<Descriptor>()).first;
  }
  return *it->second;
}

Status H2Middleware::SubmitPatch(const NamespaceId& ns, RingTuple tuple,
                                 OpMeter& meter) {
  std::vector<RingTuple> tuples;
  tuples.push_back(std::move(tuple));
  return SubmitPatchTuples(ns, std::move(tuples), meter);
}

Status H2Middleware::SubmitPatchTuples(const NamespaceId& ns,
                                       std::vector<RingTuple> tuples,
                                       OpMeter& meter) {
  // Phase 1 (§3.3.2): write the patch as a durable log object named
  // "<ns>::/NameRing/.Node<k>.Patch<i>" and advance the chain head.
  std::uint64_t patch_no = 0;
  {
    H2ReleasableMutexLock lock(mu_);
    Descriptor& desc = DescriptorFor(ns);
    if (!desc.chain_loaded) {
      lock.Unlock();
      Result<ObjectValue> chain_obj =
          cloud_.Get(PatchChainKey(ns, node_), meter);
      PatchChain recovered;
      if (chain_obj.ok()) {
        H2_ASSIGN_OR_RETURN(recovered, PatchChain::Parse(chain_obj->payload));
      } else if (chain_obj.code() != ErrorCode::kNotFound) {
        return chain_obj.status();
      }
      lock.Lock();
      Descriptor& desc2 = DescriptorFor(ns);
      if (!desc2.chain_loaded) {
        desc2.chain = recovered;
        desc2.chain_loaded = true;
      }
    }
    Descriptor& ready = DescriptorFor(ns);
    patch_no = ready.chain.next_patch++;
  }

  NameRing patch;
  for (RingTuple& tuple : tuples) patch.Apply(std::move(tuple));
  // The patch's dir_version (its newest tuple) is what the overlaid view
  // of ns now carries: announcing it as the ring floor drops stale cached
  // snapshots and fences in-flight fills.
  const VirtualNanos patch_version = patch.dir_version();
  const VirtualNanos now = ClockFor(meter).Tick();
  H2_RETURN_IF_ERROR(cloud_.Put(PatchKey(ns, node_, patch_no),
                                MakeObject(patch.Serialize(), "patch", now),
                                meter, PutOptions{.durable = true}));
  PatchChain chain_snapshot;
  {
    H2MutexLock lock(mu_);
    Descriptor& desc = DescriptorFor(ns);
    desc.pending.emplace(patch_no, std::move(patch));
    chain_snapshot = desc.chain;
    ++counters_.patches_submitted;
    resolve_cache_.NoteRingVersion(ns, patch_version);
  }
  H2_RETURN_IF_ERROR(
      cloud_.Put(PatchChainKey(ns, node_),
                 MakeObject(chain_snapshot.Serialize(), "chain", now), meter));

  if (config_.synchronous_maintenance) {
    // Strawman mode (§3.3.1): the caller waits for the merge.
    H2ReleasableMutexLock lock(mu_);
    MergeNamespaceLocked(ns, lock, meter);
  }
  return Status::Ok();
}

std::size_t H2Middleware::MergeNamespaceLocked(
    const NamespaceId& ns, H2ReleasableMutexLock& lock, OpMeter& meter) {
  assert(lock.held());
  if (write_blocked_.contains(ns)) return 0;  // §3.3.3(b)
  Descriptor& desc = DescriptorFor(ns);
  if (!desc.chain_loaded || desc.chain.pending() == 0) return 0;

  const std::uint64_t lo = desc.chain.merged_through + 1;
  const std::uint64_t hi = desc.chain.next_patch - 1;

  // Step 1: merge the patch link-list into one "big" patch, fetching any
  // patch this process does not hold in memory (recovery after restart).
  NameRing big;
  std::vector<std::uint64_t> have;
  for (std::uint64_t i = lo; i <= hi; ++i) {
    auto it = desc.pending.find(i);
    if (it != desc.pending.end()) {
      big.Merge(it->second);
      have.push_back(i);
    }
  }
  std::vector<std::uint64_t> missing;
  for (std::uint64_t i = lo; i <= hi; ++i) {
    if (!std::binary_search(have.begin(), have.end(), i)) missing.push_back(i);
  }
  std::optional<NameRing> local_copy = desc.local;

  lock.Unlock();
  for (std::uint64_t i : missing) {
    Result<ObjectValue> obj = cloud_.Get(PatchKey(ns, node_, i), meter);
    if (!obj.ok()) continue;  // lost patch: tolerated, see header comment
    Result<NameRing> parsed = NameRing::Parse(obj->payload);
    if (parsed.ok()) big.Merge(*parsed);
  }

  // Step 2: read-merge-write the NameRing object.
  Result<ObjectValue> ring_obj = cloud_.Get(NameRingKey(ns), meter);
  bool ring_exists = ring_obj.ok();
  NameRing ring;
  if (ring_exists) {
    Result<NameRing> parsed = NameRing::Parse(ring_obj->payload);
    if (parsed.ok()) ring = std::move(parsed).value();
  }
  std::size_t merged_patches = 0;
  std::size_t history_folded = 0;
  VirtualNanos version = 0;
  if (ring_exists) {
    ring.Merge(big);
    if (local_copy.has_value()) ring.Merge(*local_copy);
    ring.NoteMerged(node_, hi);
    version = ClockFor(meter).Tick();
    // The stored dir_version must equal the version this merge announces,
    // or cache refills would chase a floor the ring never reaches.
    ring.BumpVersion(version);
    // Retention: fold patch history older than the watermark in the same
    // rewrite (pinned versions are held by the ring itself).
    if (version > config_.history_watermark) {
      history_folded =
          ring.CompactHistory(version - config_.history_watermark);
    }
    const Status put =
        cloud_.Put(NameRingKey(ns),
                   MakeObject(ring.Serialize(), "ring", version), meter);
    if (!put.ok()) {
      lock.Lock();
      return 0;  // retry on the next merge pass
    }
    merged_patches = static_cast<std::size_t>(hi - lo + 1);
  }
  // The ring object being gone means the directory was removed; the
  // patches are obsolete either way.  Delete them and advance the chain.
  for (std::uint64_t i = lo; i <= hi; ++i) {
    (void)cloud_.Delete(PatchKey(ns, node_, i), meter);
  }

  lock.Lock();
  Descriptor& after = DescriptorFor(ns);
  after.chain.merged_through = hi;
  for (std::uint64_t i = lo; i <= hi; ++i) after.pending.erase(i);
  PatchChain chain_snapshot = after.chain;
  if (ring_exists) {
    after.local = ring;
    after.local_version = version;
    resolve_cache_.NoteRingVersion(ns, version);
  }
  counters_.patches_merged += merged_patches;
  counters_.history_tuples_folded += history_folded;
  ++counters_.merge_passes;

  lock.Unlock();
  const VirtualNanos now = ClockFor(meter).Tick();
  (void)cloud_.Put(PatchChainKey(ns, node_),
                   MakeObject(chain_snapshot.Serialize(), "chain", now),
                   meter);
  if (ring_exists) Announce(ns, version);
  lock.Lock();
  return merged_patches;
}

std::size_t H2Middleware::MergeNamespace(const NamespaceId& ns) {
  OpMeter local;
  local.SetZone(zone_);
  std::size_t merged = 0;
  {
    H2ReleasableMutexLock lock(mu_);
    merged = MergeNamespaceLocked(ns, lock, local);
  }
  H2MutexLock lock(mu_);
  maintenance_meter_.Merge(local.cost());
  return merged;
}

std::size_t H2Middleware::MergePending() {
  std::vector<NamespaceId> targets;
  {
    H2MutexLock lock(mu_);
    targets.reserve(descriptors_.size());
    // h2lint: ordered -- candidate collection, sorted below
    for (const auto& [ns, desc] : descriptors_) {
      if (desc->chain_loaded && desc->chain.pending() > 0) {
        targets.push_back(ns);
      }
    }
  }
  // Merge in namespace order: each merge ticks the clock and stamps ring
  // versions, so hash-table order would make the merge schedule -- and
  // every timestamp downstream of it -- nondeterministic run-to-run.
  std::sort(targets.begin(), targets.end());
  std::size_t merged = 0;
  for (const NamespaceId& ns : targets) merged += MergeNamespace(ns);
  return merged;
}

std::size_t H2Middleware::RunLazyCleanup(std::size_t max_objects) {
  OpMeter local;
  local.SetZone(zone_);
  // Pin releases first: they are what re-queues parked namespaces below,
  // and each processed entry counts as work so quiescence loops converge.
  std::size_t deleted = ProcessUnpins(local);
  while (deleted < max_objects) {
    NamespaceId ns;
    {
      H2MutexLock lock(mu_);
      if (cleanup_queue_.empty()) break;
      ns = cleanup_queue_.front();
      cleanup_queue_.pop_front();
    }
    // Read the removed directory's NameRing to find its children, fetch
    // the subdirectory records in one batch (to seed the queue with their
    // namespaces), then delete everything under the namespace as a second
    // batch -- the whole level's teardown is two waves of fan-out.
    std::vector<BatchOp> deletes;
    Result<ObjectValue> ring_obj = cloud_.Get(NameRingKey(ns), local);
    if (ring_obj.ok()) {
      Result<NameRing> parsed = NameRing::Parse(ring_obj->payload);
      if (parsed.ok()) {
        if (parsed->pin_count() > 0) {
          // A snapshot clone still reads this directory: park it.  Parked
          // namespaces are not re-enqueued (so quiescence terminates);
          // the final Unpin re-queues them.
          H2MutexLock lock(mu_);
          parked_cleanups_.insert(ns);
          continue;
        }
        const std::vector<RingTuple> children = parsed->LiveChildren();
        std::vector<BatchOp> record_gets;
        for (const RingTuple& child : children) {
          if (child.kind == EntryKind::kDirectory) {
            record_gets.push_back(BatchOp::Get(ChildKey(ns, child.name)));
          }
        }
        const std::vector<BatchResult> records =
            cloud_.ExecuteBatch(std::move(record_gets), local);
        for (const BatchResult& rec_obj : records) {
          if (!rec_obj.ok()) continue;
          Result<DirRecord> rec = DirRecord::Parse(rec_obj.value->payload);
          if (rec.ok()) {
            H2MutexLock lock(mu_);
            if (rec->reference) {
              // A clone lived here: release its subtree pins instead of
              // deleting the (shared) source namespace.
              unpin_queue_.push_back(
                  UnpinEntry{rec->ns, rec->ref_version, /*recurse=*/true});
            } else {
              cleanup_queue_.push_back(rec->ns);
            }
          }
        }
        for (const RingTuple& child : children) {
          deletes.push_back(BatchOp::Delete(ChildKey(ns, child.name)));
        }
      }
      deletes.push_back(BatchOp::Delete(NameRingKey(ns)));
    }
    {
      // Only now is the namespace actually dying (Retire at RMDIR time
      // would kill caching for clone reads through parked namespaces).
      H2MutexLock lock(mu_);
      resolve_cache_.Retire(ns);
    }
    deletes.push_back(BatchOp::Delete(PatchChainKey(ns, node_)));
    // Drop any of our own patch objects still parked under this namespace.
    std::vector<std::uint64_t> orphan_patches;
    {
      H2MutexLock lock(mu_);
      auto it = descriptors_.find(ns);
      if (it != descriptors_.end()) {
        for (const auto& [patch_no, patch] : it->second->pending) {
          orphan_patches.push_back(patch_no);
        }
        descriptors_.erase(it);
      }
    }
    for (std::uint64_t patch_no : orphan_patches) {
      deletes.push_back(BatchOp::Delete(PatchKey(ns, node_, patch_no)));
    }
    const std::vector<BatchResult> dropped =
        cloud_.ExecuteBatch(std::move(deletes), local);
    for (const BatchResult& r : dropped) {
      if (r.ok()) ++deleted;
    }
  }
  H2MutexLock lock(mu_);
  counters_.cleanup_objects_deleted += deleted;
  maintenance_meter_.Merge(local.cost());
  return deleted;
}


std::size_t H2Middleware::ProcessUnpins(OpMeter& meter) {
  std::size_t processed = 0;
  for (;;) {
    UnpinEntry entry;
    {
      H2MutexLock lock(mu_);
      if (unpin_queue_.empty()) break;
      entry = unpin_queue_.front();
      unpin_queue_.pop_front();
    }
    ++processed;
    Result<ObjectValue> ring_obj = cloud_.Get(NameRingKey(entry.ns), meter);
    if (!ring_obj.ok()) continue;  // already torn down elsewhere
    Result<NameRing> parsed = NameRing::Parse(ring_obj->payload);
    if (!parsed.ok()) continue;
    NameRing ring = std::move(*parsed);
    const bool unpinned = ring.Unpin(entry.version);
    if (unpinned) {
      (void)cloud_.Put(
          NameRingKey(entry.ns),
          MakeObject(ring.Serialize(), "ring", ClockFor(meter).Tick()),
          meter);
      H2MutexLock lock(mu_);
      ++counters_.rings_unpinned;
    }
    // Recurse only when a pin was actually consumed: the pin walk takes
    // one pin per (namespace, version) even when a reference cycle
    // reaches the pair twice, so an entry that found no pin to release
    // is the second arrival of such a cycle -- re-enqueueing its
    // children would spin forever.
    if (unpinned && entry.recurse) {
      // Walk the pinned view: subtree pins were taken against the state at
      // entry.version, so the same view drives the release.  Nested
      // references hold their own version's pin (mirrors PinTree).
      Result<std::vector<RingTuple>> view = ring.LiveChildrenAt(entry.version);
      const std::vector<RingTuple> children =
          view.ok() ? std::move(*view) : ring.LiveChildren();
      for (const RingTuple& child : children) {
        if (child.kind != EntryKind::kDirectory) continue;
        Result<DirRecord> rec = LoadDirRecord(entry.ns, child.name, meter);
        if (!rec.ok()) continue;
        H2MutexLock lock(mu_);
        if (rec->reference) {
          unpin_queue_.push_back(
              UnpinEntry{rec->ns, rec->ref_version, /*recurse=*/true});
        } else {
          unpin_queue_.push_back(
              UnpinEntry{rec->ns, entry.version, /*recurse=*/true});
        }
      }
    }
    if (unpinned && ring.pins().count(entry.version) == 0) {
      // Last pin at this version: the copies preserve-on-write kept for
      // it are unreachable now -- reclaim them.
      std::vector<std::string> stale;
      {
        H2MutexLock lock(mu_);
        auto it = preserved_hint_.lower_bound(
            {entry.ns, entry.version, std::string()});
        while (it != preserved_hint_.end() &&
               std::get<0>(*it) == entry.ns &&
               std::get<1>(*it) == entry.version) {
          stale.push_back(std::get<2>(*it));
          it = preserved_hint_.erase(it);
        }
      }
      for (const std::string& name : stale) {
        (void)cloud_.Delete(PreservedKey(entry.ns, name, entry.version),
                            meter);
        H2MutexLock lock(mu_);
        ++counters_.cleanup_objects_deleted;
      }
    }
    if (ring.pin_count() == 0) {
      H2MutexLock lock(mu_);
      pinned_ns_.erase(entry.ns);  // disarm preserve-on-write
      // If lazy cleanup parked this namespace waiting on pins, resume it.
      auto parked = parked_cleanups_.find(entry.ns);
      if (parked != parked_cleanups_.end()) {
        parked_cleanups_.erase(parked);
        cleanup_queue_.push_back(entry.ns);
      }
    }
  }
  return processed;
}

std::size_t H2Middleware::CompactRingHistory(std::size_t max_rings) {
  if (config_.history_watermark == 0) {
    // Watermark 0 folds at every merge; there is nothing left for the
    // background pass to do.
    return 0;
  }
  OpMeter local;
  local.SetZone(zone_);
  std::vector<NamespaceId> targets;
  {
    H2MutexLock lock(mu_);
    // h2lint: ordered -- candidate collection, sorted below
    for (const auto& [ns, desc] : descriptors_) {
      if (desc->local.has_value() && desc->pending.empty() &&
          desc->local->history_count() > 0) {
        targets.push_back(ns);
      }
    }
  }
  std::sort(targets.begin(), targets.end());
  std::size_t folded = 0;
  std::size_t visited = 0;
  for (const NamespaceId& ns : targets) {
    if (visited >= max_rings) break;
    ++visited;
    const VirtualNanos now = ClockFor(local).Now();
    if (now <= config_.history_watermark) continue;
    const VirtualNanos cutoff = now - config_.history_watermark;
    Result<ObjectValue> ring_obj = cloud_.Get(NameRingKey(ns), local);
    if (!ring_obj.ok()) continue;
    Result<NameRing> parsed = NameRing::Parse(ring_obj->payload);
    if (!parsed.ok()) continue;
    const std::size_t n = parsed->CompactHistory(cutoff);
    if (n == 0) continue;
    const Status put = cloud_.Put(
        NameRingKey(ns),
        MakeObject(parsed->Serialize(), "ring", ClockFor(local).Tick()),
        local);
    if (!put.ok()) continue;
    folded += n;
    H2MutexLock lock(mu_);
    // Fold the local copy too, or the next gossip merge would re-import
    // the history we just dropped.
    Descriptor& desc = DescriptorFor(ns);
    if (desc.local.has_value()) desc.local->CompactHistory(cutoff);
  }
  H2MutexLock lock(mu_);
  counters_.history_tuples_folded += folded;
  if (folded > 0) ++counters_.history_compaction_passes;
  history_meter_.Merge(local.cost());
  return folded;
}

OpCost H2Middleware::history_compaction_cost() const {
  H2MutexLock lock(mu_);
  return history_meter_.cost();
}

bool H2Middleware::MaintenanceIdleLocked() const {
  if (!cleanup_queue_.empty()) return false;
  if (!unpin_queue_.empty()) return false;
  // Parked cleanups are deliberately NOT counted: they wait on an unpin
  // that may never come locally, and counting them would make quiescence
  // loops spin forever.
  // h2lint: ordered -- existence predicate, order insensitive
  for (const auto& [ns, desc] : descriptors_) {
    if (desc->chain_loaded && desc->chain.pending() > 0) return false;
  }
  return true;
}

bool H2Middleware::MaintenanceIdle() const {
  H2MutexLock lock(mu_);
  return MaintenanceIdleLocked();
}

// ---------------------------------------------------------------------------
// Gossip (§3.3.2, phase 2 step 2)
// ---------------------------------------------------------------------------

void H2Middleware::JoinGossip(GossipBus& bus) {
  gossip_ = &bus;
  gossip_member_ = bus.Join(
      [this](const Rumor& rumor) { return HandleRumor(rumor); });
}

void H2Middleware::Announce(const NamespaceId& ns, VirtualNanos version) {
  if (gossip_ == nullptr) return;
  gossip_->Publish(gossip_member_,
                   Rumor{ns.ToString(), node_, version});
}

bool H2Middleware::ObserveTopologyEpoch(std::uint64_t epoch) {
  {
    H2MutexLock lock(mu_);
    ++counters_.gossip_rumors_handled;
    if (epoch <= topology_epoch_) return false;  // old news: stop forwarding
    topology_epoch_ = epoch;
    ++counters_.topology_updates;
  }
  // Placement-derived cache state is stale the instant the ring moves:
  // flush outside mu_ (the cache is a leaf lock; never nest into it
  // while holding state the cache's other callers also take).
  resolve_cache_.OnTopologyEpoch(epoch);
  return true;
}

bool H2Middleware::HandleRumor(const Rumor& rumor) {
  // Membership epochs travel the same bus as NameRing rumors (the
  // middleware learns topology exactly like it learns patches); the
  // reserved topic dispatches before the namespace parse below.
  if (rumor.topic == kMembershipRumorTopic) {
    return ObserveTopologyEpoch(
        static_cast<std::uint64_t>(rumor.version));
  }
  Result<NamespaceId> parsed = NamespaceId::Parse(rumor.topic);
  if (!parsed.ok()) return false;
  const NamespaceId ns = *parsed;

  {
    H2MutexLock lock(mu_);
    ++counters_.gossip_rumors_handled;
    Descriptor& desc = DescriptorFor(ns);
    // Loop-back avoidance by timestamp comparison (§3.3.2): if the local
    // version already covers the rumor, abort forwarding.
    if (desc.local_version >= rumor.version) return false;
  }

  OpMeter local_meter;
  local_meter.SetZone(zone_);
  Result<ObjectValue> ring_obj = cloud_.Get(NameRingKey(ns), local_meter);
  bool fresh = false;
  bool need_repair = false;
  NameRing repaired;
  VirtualNanos repair_version = 0;
  if (ring_obj.ok()) {
    Result<NameRing> cloud_ring = NameRing::Parse(ring_obj->payload);
    if (cloud_ring.ok()) {
      H2MutexLock lock(mu_);
      Descriptor& desc = DescriptorFor(ns);
      NameRing merged = *cloud_ring;
      if (desc.local.has_value()) {
        // Age out tombstones from the local copy the same way compaction
        // does, so a legitimately compacted deletion is not "repaired"
        // back into the ring forever.
        NameRing aged = *desc.local;
        aged.PruneTombstones(ClockFor(local_meter).Now() -
                             config_.tombstone_gc_age);
        merged.Merge(aged);
      }
      fresh = !desc.local.has_value() || !(merged == *desc.local);
      if (!(merged == *cloud_ring)) {
        // The stored ring is missing updates we hold locally: a concurrent
        // read-merge-write clobbered them.  Write the join back, stamped
        // and version-bumped like any merge.
        need_repair = true;
        repair_version = ClockFor(local_meter).Tick();
        merged.BumpVersion(repair_version);
        repaired = merged;
        ++counters_.gossip_repairs;
      }
      desc.local = std::move(merged);
      desc.local_version = std::max(
          {desc.local_version, rumor.version, repair_version});
      // A remote middleware changed this directory: raise the floors so
      // older cached state about it -- ring snapshot and child records
      // alike -- is dropped and cannot be re-admitted.
      resolve_cache_.NoteVersion(ns, std::max(rumor.version, repair_version));
    }
  } else {
    // Ring gone (directory removed elsewhere): remember the version so the
    // rumor stops here.
    H2MutexLock lock(mu_);
    Descriptor& desc = DescriptorFor(ns);
    desc.local_version = std::max(desc.local_version, rumor.version);
    resolve_cache_.NoteVersion(ns, rumor.version);
  }

  if (need_repair) {
    (void)cloud_.Put(NameRingKey(ns),
                     MakeObject(repaired.Serialize(), "ring", repair_version),
                     local_meter);
    Announce(ns, repair_version);
  }
  H2MutexLock lock(mu_);
  maintenance_meter_.Merge(local_meter.cost());
  return fresh;
}

// ---------------------------------------------------------------------------
// Compaction & caches
// ---------------------------------------------------------------------------

Status H2Middleware::MaybeCompact(const NamespaceId& ns, NameRing& ring,
                                  OpMeter& meter) {
  if (!config_.compact_on_use || ring.tombstone_count() == 0) {
    return Status::Ok();
  }
  NameRing pruned = ring;
  const std::size_t removed = pruned.PruneTombstones(
      ClockFor(meter).Now() - config_.tombstone_gc_age);
  if (removed == 0) return Status::Ok();
  const VirtualNanos now = ClockFor(meter).Tick();
  pruned.BumpVersion(now);
  H2_RETURN_IF_ERROR(cloud_.Put(NameRingKey(ns),
                                MakeObject(pruned.Serialize(), "ring", now),
                                meter));
  ring = pruned;
  H2MutexLock lock(mu_);
  Descriptor& desc = DescriptorFor(ns);
  desc.local = std::move(pruned);
  desc.local_version = now;
  resolve_cache_.NoteRingVersion(ns, now);
  counters_.tombstones_compacted += removed;
  return Status::Ok();
}

OpCost H2Middleware::maintenance_cost() const {
  H2MutexLock lock(mu_);
  return maintenance_meter_.cost();
}

H2Counters H2Middleware::CountersLocked() const {
  H2Counters out = counters_;
  const H2ResolveCache::Stats cache = resolve_cache_.stats();
  out.resolve_cache_hits = cache.hits;
  out.resolve_cache_misses = cache.misses;
  out.resolve_cache_invalidations = cache.invalidations;
  return out;
}

H2Counters H2Middleware::counters() const {
  H2MutexLock lock(mu_);
  return CountersLocked();
}

H2Middleware::StatsSnapshot H2Middleware::Snapshot() const {
  H2MutexLock lock(mu_);
  StatsSnapshot snap;
  snap.counters = CountersLocked();
  snap.maintenance = maintenance_meter_.cost();
  snap.idle = MaintenanceIdleLocked();
  return snap;
}

}  // namespace h2
