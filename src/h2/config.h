// Tunables of the H2 middleware.  Defaults follow the paper's design;
// the non-default settings are exercised by the ablation benches.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace h2 {

struct H2Config {
  /// Cache (parent namespace, name) -> child namespace lookups.  The paper's
  /// H2 resolves level-by-level on every access (O(d), Fig. 13), so the
  /// cache defaults off; switching it on approximates the locality that
  /// makes Dynamic Partition look O(1) (bench/ablation_ns_cache).
  bool namespace_cache = false;
  /// Bound on cached (parent ns, name) -> namespace entries; least
  /// recently used entries are evicted beyond it.
  std::size_t ns_cache_capacity = 65'536;

  /// Physically drop tombstoned tuples when a NameRing is "in use"
  /// (LIST/MOVE), per §3.3.2.  Tombstones younger than `tombstone_gc_age`
  /// are kept so a delayed old creation patch cannot resurrect a deleted
  /// child and a concurrently clobbered deletion can still be repaired by
  /// gossip; 0 reproduces the paper's eager behaviour (and its anomaly --
  /// demonstrated in tests/h2/maintenance_test.cc).
  bool compact_on_use = true;
  VirtualNanos tombstone_gc_age = 2 * kSecond;

  /// Parallel lanes for the per-child metadata fetches of a detailed LIST;
  /// 0 uses the cloud latency profile's batch width.
  std::uint64_t list_batch_width = 0;

  /// Journal a durable intent object before each MOVE's multi-object
  /// mutation sequence, so a middleware crash mid-move can be re-driven
  /// by RecoverIntents() instead of leaving the entry reachable under
  /// both names (or neither).  Costs ~3 extra object ops per MOVE.
  bool move_intent_log = true;

  /// Charge background merging/cleanup to the foreground operation meter
  /// instead of the maintenance meter.  Models the strawman *synchronous*
  /// protocol of §3.3.1 (ablation: what asynchrony buys).
  bool synchronous_maintenance = false;
};

}  // namespace h2
