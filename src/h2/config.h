// Tunables of the H2 middleware.  Defaults follow the paper's design;
// the non-default settings are exercised by the ablation benches.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace h2 {

struct H2Config {
  /// The H2ResolveCache (h2/resolve_cache.h): a versioned, bounded LRU of
  /// (parent namespace, name) -> DirRecord plus per-namespace merged
  /// NameRing snapshots, invalidated by patch/merge/gossip events rather
  /// than TTLs.  Defaults on -- it only removes redundant cloud GETs.
  /// Paper-reproduction fixtures and benches pin it off to preserve the
  /// level-by-level O(d) resolution of Fig. 13.
  bool resolve_cache = true;
  /// Bound on cached (parent ns, name) -> DirRecord entries; least
  /// recently used entries are evicted beyond it.
  std::size_t resolve_cache_capacity = 65'536;
  /// Bound on cached per-namespace merged NameRing snapshots.
  std::size_t ring_cache_capacity = 4'096;

  /// Physically drop tombstoned tuples when a NameRing is "in use"
  /// (LIST/MOVE), per §3.3.2.  Tombstones younger than `tombstone_gc_age`
  /// are kept so a delayed old creation patch cannot resurrect a deleted
  /// child and a concurrently clobbered deletion can still be repaired by
  /// gossip; 0 reproduces the paper's eager behaviour (and its anomaly --
  /// demonstrated in tests/h2/maintenance_test.cc).
  bool compact_on_use = true;
  VirtualNanos tombstone_gc_age = 2 * kSecond;

  /// How much merged patch history a versioned NameRing retains
  /// (DESIGN.md §13): the merge path and the background history-compaction
  /// pass fold history older than `merge tick - history_watermark`, so
  /// ListAt/StatAt can look back at most this far (snapshot pins always
  /// hold their own version answerable regardless of the watermark).
  /// 0 folds history at every merge: rings stay as lean as the unversioned
  /// design and only pinned versions remain readable.
  VirtualNanos history_watermark = 0;

  /// Wave width for the per-child metadata HEAD batch of a detailed LIST
  /// (passed to ObjectCloud::ExecuteBatch as BatchOptions::concurrency).
  /// 0 defers down the defaulting chain, each level yielding to the next
  /// only when it is itself 0:
  ///   BatchOptions::concurrency -> CloudConfig::io_concurrency
  ///     -> LatencyProfile::batch_width -> floor of 1.
  /// The chain is pinned by ExecuteBatchTest.EffectiveConcurrencyDefaultingChain;
  /// width affects only the critical-path price, never results or final
  /// state (ObjectCloud::ExecuteBatch's determinism contract).
  std::uint64_t list_batch_width = 0;

  /// Journal a durable intent object before each MOVE's multi-object
  /// mutation sequence, so a middleware crash mid-move can be re-driven
  /// by RecoverIntents() instead of leaving the entry reachable under
  /// both names (or neither).  Costs ~3 extra object ops per MOVE.
  bool move_intent_log = true;

  /// Charge background merging/cleanup to the foreground operation meter
  /// instead of the maintenance meter.  Models the strawman *synchronous*
  /// protocol of §3.3.1 (ablation: what asynchrony buys).
  bool synchronous_maintenance = false;

  // Substrate durability is configured one level down, not here: the
  // storage nodes' backend (volatile in-memory maps vs the append-only
  // segment log with group-commit fsync and crash-recovery replay) and
  // the hint-queue bound are CloudConfig knobs -- see
  // `H2CloudConfig::cloud.backend` / `.cloud.max_hints_per_node` and
  // cluster/backend/storage_backend.h for the semantics.
};

}  // namespace h2
