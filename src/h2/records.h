// Stored record types for H2 objects other than NameRings.
//
// All of these go through the Formatter's key=value codec so the objects
// in the cloud are plain ASCII (§4.4): directory records ("Directories
// are converted to ASCII strings corresponding to their namespaces"),
// account roots, and patch-chain heads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/status.h"
#include "hash/uuid.h"

namespace h2 {

/// The object stored at "<parent_ns>::<dirname>": binds a directory name
/// to the namespace that owns its NameRing and children.
///
/// A *reference* record (SnapshotClone, DESIGN.md §13) points `ns` at
/// another directory's namespace and pins the view at `ref_version`: reads
/// resolve through the source ring as of that version, and the first
/// mutation materializes the directory copy-on-write.  The pinned source
/// namespace carries a pin count (PinKey) so lazy cleanup defers it.
struct DirRecord {
  NamespaceId ns;          // this directory's own namespace
  NamespaceId parent_ns;   // namespace of the containing directory
  std::string name;
  VirtualNanos created = 0;
  bool reference = false;        // true: `ns` is a pinned source namespace
  VirtualNanos ref_version = 0;  // pinned DirVersion when reference

  std::string Serialize() const;
  static Result<DirRecord> Parse(std::string_view data);
};

/// The object stored at "account::<user>": the account's root namespace.
struct AccountRecord {
  std::string user;
  NamespaceId root_ns;
  VirtualNanos created = 0;

  std::string Serialize() const;
  static Result<AccountRecord> Parse(std::string_view data);
};

/// Head object of one node's patch link-list for one NameRing (§3.3.2:
/// "patches within each node are arranged as a link-list").  Patch numbers
/// in [merged_through + 1, next_patch) exist as objects and await merging.
struct PatchChain {
  std::uint64_t next_patch = 1;      // number the next submission takes
  std::uint64_t merged_through = 0;  // all patches <= this are merged

  std::uint64_t pending() const {
    return next_patch > merged_through + 1 ? next_patch - 1 - merged_through
                                           : 0;
  }

  std::string Serialize() const;
  static Result<PatchChain> Parse(std::string_view data);
};

// Metadata keys used on file content objects.
inline constexpr std::string_view kMetaKind = "kind";       // "file" / "dir"
inline constexpr std::string_view kMetaKindFile = "file";
inline constexpr std::string_view kMetaKindDir = "dir";

}  // namespace h2
