#include "h2/records.h"

#include "codec/formatter.h"

namespace h2 {
namespace {

Result<NamespaceId> ParseNsField(const KvRecord& record,
                                 std::string_view key) {
  if (!record.Has(key)) {
    return Status::Corruption("missing field: " + std::string(key));
  }
  return NamespaceId::Parse(record.Get(key));
}

}  // namespace

std::string DirRecord::Serialize() const {
  KvRecord record;
  record.Set(kMetaKind, kMetaKindDir);
  record.Set("ns", ns.ToString());
  record.Set("parent", parent_ns.ToString());
  record.Set("name", name);
  record.SetInt("created", created);
  if (reference) record.SetInt("refv", ref_version);
  return record.Serialize();
}

Result<DirRecord> DirRecord::Parse(std::string_view data) {
  H2_ASSIGN_OR_RETURN(KvRecord record, KvRecord::Parse(data));
  if (record.Get(kMetaKind) != kMetaKindDir) {
    return Status::Corruption("object is not a directory record");
  }
  DirRecord dir;
  H2_ASSIGN_OR_RETURN(dir.ns, ParseNsField(record, "ns"));
  H2_ASSIGN_OR_RETURN(dir.parent_ns, ParseNsField(record, "parent"));
  dir.name = record.Get("name");
  H2_ASSIGN_OR_RETURN(dir.created, record.GetInt("created"));
  if (record.Has("refv")) {
    dir.reference = true;
    H2_ASSIGN_OR_RETURN(dir.ref_version, record.GetInt("refv"));
  }
  return dir;
}

std::string AccountRecord::Serialize() const {
  KvRecord record;
  record.Set("user", user);
  record.Set("root", root_ns.ToString());
  record.SetInt("created", created);
  return record.Serialize();
}

Result<AccountRecord> AccountRecord::Parse(std::string_view data) {
  H2_ASSIGN_OR_RETURN(KvRecord record, KvRecord::Parse(data));
  AccountRecord account;
  account.user = record.Get("user");
  H2_ASSIGN_OR_RETURN(account.root_ns, ParseNsField(record, "root"));
  H2_ASSIGN_OR_RETURN(account.created, record.GetInt("created"));
  return account;
}

std::string PatchChain::Serialize() const {
  KvRecord record;
  record.SetUint("next", next_patch);
  record.SetUint("merged", merged_through);
  return record.Serialize();
}

Result<PatchChain> PatchChain::Parse(std::string_view data) {
  H2_ASSIGN_OR_RETURN(KvRecord record, KvRecord::Parse(data));
  PatchChain chain;
  H2_ASSIGN_OR_RETURN(chain.next_patch, record.GetUint("next"));
  H2_ASSIGN_OR_RETURN(chain.merged_through, record.GetUint("merged"));
  if (chain.next_patch == 0 || chain.merged_through >= chain.next_patch) {
    return Status::Corruption("inconsistent patch chain");
  }
  return chain;
}

}  // namespace h2
