// System monitoring (§4.2: "there are a few other modules inside an
// H2Middleware for inter-communications and system monitoring").
//
// Assembles one coherent snapshot of a running H2Cloud -- per-middleware
// protocol counters and maintenance cost, per-node storage load, ring
// shape, gossip traffic -- and renders it as an operator-readable report.
// Used by the examples and by tests that assert system-level invariants
// (e.g. "all patches submitted were eventually merged").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gossip/gossip.h"
#include "h2/h2cloud.h"

namespace h2 {

struct MiddlewareSnapshot {
  std::uint32_t node_id = 0;
  std::uint32_t zone = 0;
  H2Counters counters;
  OpCost maintenance;
  bool idle = true;
};

struct NodeSnapshot {
  std::string name;
  std::uint32_t zone = 0;
  std::uint64_t objects = 0;
  std::uint64_t logical_bytes = 0;
  /// Hinted-handoff writes parked on this node for unreachable replicas.
  std::uint64_t hints_pending = 0;
  /// Hints this node refused because its bounded queue was full
  /// (CloudConfig::max_hints_per_node); convergence for those writes
  /// falls back to the anti-entropy scrub.
  std::uint64_t hints_overflowed = 0;
  bool down = false;
};

struct MonitorSnapshot {
  std::vector<MiddlewareSnapshot> middlewares;
  std::vector<NodeSnapshot> nodes;
  GossipStats gossip;
  /// Substrate replica-repair counters (hinted handoff, read-repair,
  /// anti-entropy) and the out-of-band cost charged for them.
  ObjectCloud::RepairStats repair;
  OpCost repair_cost;
  /// Aggregated per-node storage-backend durability counters (group-commit
  /// fsyncs, crash/recovery replay) plus the backend name in play.
  BackendStats backend;
  std::string backend_name;
  /// Foreground batched-I/O accounting (ObjectCloud::ExecuteBatch):
  /// batches issued, lanes carried, and serial-vs-critical-path cost.
  ObjectCloud::BatchStats batch;
  /// Elastic-membership state: current ring epoch, keys still awaiting
  /// migration, and the cumulative bounded-rate rebalancer counters
  /// (charged out-of-band on their own meter, like repair).
  ObjectCloud::RebalanceStats rebalance;
  OpCost rebalance_cost;
  /// Versioned-ring retention: cumulative background history-compaction
  /// cost across the fleet (the dedicated meter, out-of-band like repair).
  OpCost history_compaction_cost;
  std::uint64_t membership_epoch = 0;
  std::size_t rebalance_pending = 0;
  std::uint64_t logical_objects = 0;
  std::uint64_t raw_objects = 0;
  std::uint64_t logical_bytes = 0;
  std::size_t ring_partitions = 0;
  std::size_t ring_zones = 0;

  // -- aggregates ---------------------------------------------------------
  std::uint64_t TotalPatchesSubmitted() const;
  std::uint64_t TotalPatchesMerged() const;
  std::uint64_t TotalGossipRepairs() const;
  /// Hinted-handoff writes still parked across all storage nodes.
  std::uint64_t HintsPending() const;
  /// Hints refused by full queues across all storage nodes.
  std::uint64_t HintsOverflowed() const;
  /// Resolve-cache hits / (hits + misses) across all middlewares;
  /// 0.0 when the cache saw no traffic (disabled or untouched).
  double ResolveCacheHitRate() const;
  /// All submitted patches merged, queues drained, gossip silent.
  bool FullyConverged() const;
  /// Snapshot clones taken across all middlewares.
  std::uint64_t TotalSnapshotClones() const;
  /// History tuples folded by merges and background compaction, fleet-wide.
  std::uint64_t TotalHistoryFolded() const;
  /// max/mean node object count (1.0 = perfectly even).
  double LoadImbalance() const;

  /// Operator-readable multi-section report.
  std::string ToText() const;
};

/// Collects a consistent-enough snapshot (counters are read atomically
/// per middleware; the cluster keeps serving during collection).
MonitorSnapshot CollectSnapshot(H2Cloud& cloud);

}  // namespace h2
