// H2Cloud: the whole system (§4.1, Fig. 5).
//
// Owns the object storage cloud, a fleet of H2Middlewares (the H2Layer),
// and the gossip bus that synchronizes their NameRing views.  Offers the
// user-facing Account/Directory/File APIs through per-account FileSystem
// sessions, and runs the Background Merger either deterministically
// (RunMaintenance*) or on real background threads (StartBackground).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/object_cloud.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "gossip/gossip.h"
#include "h2/account_fs.h"
#include "h2/config.h"
#include "h2/middleware.h"

namespace h2 {

struct H2CloudConfig {
  CloudConfig cloud;
  H2Config h2;
  int middleware_count = 1;  // H2Middlewares in the H2Layer
  int gossip_fanout = 3;
};

class H2Cloud {
 public:
  explicit H2Cloud(const H2CloudConfig& config = {});
  ~H2Cloud();

  H2Cloud(const H2Cloud&) = delete;
  H2Cloud& operator=(const H2Cloud&) = delete;

  // --- Account APIs ----------------------------------------------------------
  Status CreateAccount(std::string_view user);
  Status DeleteAccount(std::string_view user);
  /// Opens a filesystem session for `user` through the given middleware
  /// (requests are normally load-balanced across middlewares; picking one
  /// explicitly lets tests exercise cross-middleware consistency).
  Result<std::unique_ptr<H2AccountFs>> OpenFilesystem(
      std::string_view user, std::size_t middleware_index = 0);

  // --- elastic membership -------------------------------------------------
  // Cluster-level membership changes, announced to the H2Layer over the
  // gossip bus: the middlewares learn the new epoch (and flush their
  // placement caches) the same way they learn NameRing patches.  Data
  // movement is deferred to the bounded-rate rebalancer driven from
  // RunMaintenanceStep (or the background pump).
  Result<DeviceId> AddStorageNode();
  Status RemoveStorageNode(DeviceId id);
  Result<DeviceId> ReplaceStorageNode(DeviceId id);
  Status SetNodeWeight(DeviceId id, double weight);

  // --- deterministic maintenance ----------------------------------------------
  /// One maintenance step: every middleware merges its pending patches and
  /// runs some lazy cleanup, then gossip delivers one round, then the
  /// substrate replays hints and migrates one bounded rebalance chunk.
  /// Returns work items processed (patches + deletions + deliveries +
  /// keys migrated).
  std::size_t RunMaintenanceStep();
  /// Steps until the system is quiescent (no pending patches, empty
  /// cleanup queues, silent gossip).  Returns steps taken.
  std::size_t RunMaintenanceToQuiescence(std::size_t max_steps = 10'000);

  // --- threaded maintenance ----------------------------------------------------
  /// How StartBackground schedules the Background Merger.
  enum class BackgroundMode {
    /// One thread executing the exact serial RunMaintenanceStep schedule.
    /// With a quiet foreground the post-join state is bit-identical to the
    /// same number of deterministic RunMaintenanceStep calls (the property
    /// background_race_test asserts).
    kCoordinated,
    /// One merger thread per middleware plus a gossip/repair pump --
    /// maximal interleaving.  Converges to the same logical state but the
    /// clock-tick order (hence timestamps) depends on the schedule; this
    /// is the mode the TSan hammer drives.
    kPerMiddleware,
  };

  /// Starts the Background Merger.  Idempotent; thread-safe against
  /// concurrent Start/Stop calls.
  void StartBackground(
      std::chrono::milliseconds period = std::chrono::milliseconds(2),
      BackgroundMode mode = BackgroundMode::kCoordinated);
  /// Stops and joins all background threads.  Idempotent; safe to race
  /// with StartBackground from other threads.
  void StopBackground();
  bool BackgroundRunning() const { return background_running_.load(); }

  // --- accessors ----------------------------------------------------------------
  ObjectCloud& cloud() { return *cloud_; }
  GossipBus& gossip() { return gossip_; }
  H2Middleware& middleware(std::size_t i) { return *middlewares_[i]; }
  std::size_t middleware_count() const { return middlewares_.size(); }

  /// Sum of all middlewares' background costs.
  OpCost TotalMaintenanceCost() const;
  /// Sum of all middlewares' history-compaction meters (the dedicated
  /// retention meter; disjoint from TotalMaintenanceCost).
  OpCost TotalHistoryCompactionCost() const;

 private:
  /// Spreads the cloud's current membership epoch to the H2Layer: told
  /// directly to middleware 0 (the bus never loops a rumor back to its
  /// publisher) and gossiped to the rest.
  void AnnounceTopology();
  void CoordinatedLoop(std::chrono::milliseconds period);
  void MergerLoop(H2Middleware& mw, std::chrono::milliseconds period);
  void PumpLoop(std::chrono::milliseconds period);

  std::unique_ptr<ObjectCloud> cloud_;
  GossipBus gossip_;
  std::vector<std::unique_ptr<H2Middleware>> middlewares_;

  std::atomic<bool> background_running_{false};
  H2Mutex background_mu_;  // serializes Start/Stop
  std::vector<std::thread> background_threads_ GUARDED_BY(background_mu_);
};

}  // namespace h2
