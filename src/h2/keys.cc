#include "h2/keys.h"

#include <cstdio>

namespace h2 {

std::string ChildKey(const NamespaceId& ns, std::string_view name) {
  std::string key = ns.ToString();
  key += "::";
  key += name;
  return key;
}

std::string NameRingKey(const NamespaceId& ns) {
  return ns.ToString() + "::/NameRing/";
}

std::string PatchKey(const NamespaceId& ns, std::uint32_t node,
                     std::uint64_t patch_no) {
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ".Node%02u.Patch%02llu", node,
                static_cast<unsigned long long>(patch_no));
  return NameRingKey(ns) + suffix;
}

std::string PatchChainKey(const NamespaceId& ns, std::uint32_t node) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".Node%02u.Chain", node);
  return NameRingKey(ns) + suffix;
}

std::string PinKey(const NamespaceId& ns) {
  return NameRingKey(ns) + ".Pins";
}

std::string PreservedKey(const NamespaceId& ns, std::string_view name,
                         VirtualNanos version) {
  std::string key = NameRingKey(ns) + ".Preserved.";
  key += std::to_string(version);
  key += '.';
  key += name;
  return key;
}

std::string AccountKey(std::string_view user) {
  std::string key = "account::";
  key += user;
  return key;
}

}  // namespace h2
