// Object-key construction for the H2 data structure.
//
// H2 stores four kinds of objects in the flat cloud, all addressed by
// namespace-decorated keys (§3.1):
//
//   child objects   "<ns>::<name>"                 directory records and
//                                                  file content, addressed
//                                                  by parent namespace +
//                                                  child name
//   NameRings       "<ns>::/NameRing/"             the child list of the
//                                                  directory owning <ns>
//   patches         "<ns>::/NameRing/.Node01.Patch03"   §3.3.2 phase 1
//   patch chains    "<ns>::/NameRing/.Node01.Chain"     per-node link-list
//                                                  head for the patches
//   account roots   "account::<user>"              maps a user to the
//                                                  root namespace
//
// '/' cannot appear in a child name (fs/path.h), so "<ns>::/NameRing/"
// never collides with a child key; the namespace grammar (digits and
// dots) makes the "<ns>::" prefix unambiguous.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "hash/uuid.h"

namespace h2 {

/// "<ns>::<name>" -- the namespace-decorated relative path.  Hashing this
/// key is the paper's O(1) "quick method" of file access.
std::string ChildKey(const NamespaceId& ns, std::string_view name);

/// "<ns>::/NameRing/"
std::string NameRingKey(const NamespaceId& ns);

/// "<ns>::/NameRing/.Node<NN>.Patch<K>"
std::string PatchKey(const NamespaceId& ns, std::uint32_t node,
                     std::uint64_t patch_no);

/// "<ns>::/NameRing/.Node<NN>.Chain"
std::string PatchChainKey(const NamespaceId& ns, std::uint32_t node);

/// "<ns>::/NameRing/.Pins" -- snapshot-clone pin count for the namespace
/// (present and > 0 while reference records point at it; lazy cleanup
/// defers teardown of pinned namespaces).
std::string PinKey(const NamespaceId& ns);

/// "<ns>::/NameRing/.Preserved.<version>.<name>" -- content preserved for
/// the snapshot pin at `version` just before an in-place overwrite or
/// delete of the live child object (DESIGN.md §13).  '/' cannot appear in
/// child names, so preserved keys never collide with children.
std::string PreservedKey(const NamespaceId& ns, std::string_view name,
                         VirtualNanos version);

/// "account::<user>"
std::string AccountKey(std::string_view user);

}  // namespace h2
