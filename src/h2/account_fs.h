// H2AccountFs: the FileSystem view one user gets from an H2Middleware.
//
// A session binds (middleware, account root namespace); all paths are
// normalized here and dispatched into the middleware with this session's
// OpMeter, so `last_op()` reports the paper's operation-time metric for
// the H2Cloud system.
#pragma once

#include <string>

#include "fs/filesystem.h"
#include "h2/middleware.h"

namespace h2 {

class H2AccountFs final : public FileSystem {
 public:
  H2AccountFs(H2Middleware& middleware, std::string account,
              NamespaceId root)
      : middleware_(middleware), account_(std::move(account)), root_(root) {}

  std::string_view system_name() const override { return "H2Cloud"; }

  Status WriteFile(std::string_view path, FileBlob blob) override;
  /// Bulk ingest: one durable NameRing patch per affected directory
  /// (H2Middleware::WriteFiles).
  Status WriteFiles(std::vector<std::pair<std::string, FileBlob>> files);
  Result<FileBlob> ReadFile(std::string_view path) override;
  Result<FileInfo> Stat(std::string_view path) override;
  Status RemoveFile(std::string_view path) override;
  Status Mkdir(std::string_view path) override;
  Status Rmdir(std::string_view path) override;
  Status Move(std::string_view from, std::string_view to) override;
  Result<std::vector<DirEntry>> List(std::string_view path,
                                     ListDetail detail) override;
  Status Copy(std::string_view from, std::string_view to) override;

  // --- H2-specific extensions ------------------------------------------------
  /// Paged LIST with a Swift-style marker: at most `limit` children
  /// strictly after `start_after`; detailed metadata fetched only for
  /// the page (see H2Middleware::ListPaged).
  Result<H2Middleware::Page> ListPaged(std::string_view path,
                                       ListDetail detail,
                                       std::string_view start_after = {},
                                       std::size_t limit = 1000);
  /// The quick method (§3.2): O(1) access by namespace-decorated relative
  /// path.
  Result<FileInfo> StatRelative(const NamespaceId& ns,
                                std::string_view name);
  /// Resolve a directory path to its namespace handle.
  Result<NamespaceId> Namespace(std::string_view path);

  // --- versioned reads & snapshot clones (DESIGN.md §13) --------------------
  /// The directory's current DirVersion -- the time-travel token for
  /// ListAt/StatAt.
  Result<VirtualNanos> DirVersion(std::string_view path) override;
  /// LIST as of `version` (InvalidArgument below the retention floor).
  Result<std::vector<DirEntry>> ListAt(std::string_view path,
                                       VirtualNanos version,
                                       ListDetail detail) override;
  /// Stat as of `version`.
  Result<FileInfo> StatAt(std::string_view path,
                          VirtualNanos version) override;
  /// O(1)-per-directory snapshot clone of `from` at `to` (see
  /// H2Middleware::SnapshotClone).
  Status SnapshotClone(std::string_view from, std::string_view to) override;

  const std::string& account() const { return account_; }
  const NamespaceId& root() const { return root_; }
  H2Middleware& middleware() { return middleware_; }

 private:
  H2Middleware& middleware_;
  std::string account_;
  NamespaceId root_;
};

}  // namespace h2
