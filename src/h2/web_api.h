// The H2Cloud web APIs (§4.3): the Inbound API's three route families --
// Account APIs, Directory APIs and File Content APIs -- mapped onto the
// H2Middleware, served over the net/http substrate.
//
// Route map (targets percent-encoded; responses are plain text or the
// Formatter's record/tuple encodings):
//
//   Account APIs
//     PUT    /v1/accounts/{user}            create account        -> 201
//     DELETE /v1/accounts/{user}            delete account        -> 200
//
//   File Content APIs
//     PUT    /v1/{user}/fs{path}            WRITE (body = content;
//            optional x-logical-size header for synthetic large files)
//     GET    /v1/{user}/fs{path}            READ  (content body)
//     GET    /v1/{user}/fs{path}?stat=1     file access / Stat
//     DELETE /v1/{user}/fs{path}            remove file
//     DELETE /v1/{user}/fs{path}?dir=1      RMDIR (recursive)
//
//   Directory APIs
//     GET    /v1/{user}/fs{path}?list=names    LIST, names only (O(1))
//     GET    /v1/{user}/fs{path}?list=detail   LIST, detailed (O(m))
//     POST   /v1/{user}/fs{path}  x-op: mkdir                  MKDIR
//     POST   /v1/{user}/fs{path}  x-op: move   x-dest: <path>  MOVE
//     POST   /v1/{user}/fs{path}  x-op: rename x-name: <name>  RENAME
//     POST   /v1/{user}/fs{path}  x-op: copy   x-dest: <path>  COPY
//
// Every response carries "x-op-ms" and "x-op-primitives" headers with the
// simulated operation cost -- the same metric the benches report.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "h2/h2cloud.h"
#include "net/http.h"

namespace h2 {

class H2WebApi {
 public:
  explicit H2WebApi(H2Cloud& cloud) : cloud_(cloud) {}

  /// Handles one request (also usable without a socket, for tests).
  HttpResponse Handle(const HttpRequest& request);

  /// Starts the Inbound API server on 127.0.0.1:`port` (0 = ephemeral).
  Status StartServer(std::uint16_t port = 0);
  void StopServer();
  std::uint16_t port() const { return server_ ? server_->port() : 0; }

 private:
  HttpResponse HandleAccounts(const HttpRequest& request,
                              const std::string& user);
  HttpResponse HandleFs(const HttpRequest& request, const std::string& user,
                        const std::string& path);
  Result<NamespaceId> RootFor(const std::string& user);

  H2Cloud& cloud_;
  std::unique_ptr<HttpServer> server_;

  H2Mutex mu_;
  std::unordered_map<std::string, NamespaceId> roots_
      GUARDED_BY(mu_);  // user -> root ns
};

}  // namespace h2
