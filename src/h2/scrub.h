// Offline scrubber: reclaims unreachable H2 objects.
//
// Crash windows intentionally leave only *invisible* garbage (PROTOCOL.md):
// a COPY that died mid-subtree leaves freshly minted namespaces no path
// reaches; an interrupted lazy cleanup leaves children of removed
// directories.  The scrubber makes the guarantee complete: enumerate the
// cluster (the O(N) Scan a flat cloud supports), compute the set of
// namespaces reachable from account roots through directory records, and
// delete every H2 object belonging to an unreachable namespace.
//
// Run it like Swift runs its auditors: offline or during quiet periods,
// after draining pending maintenance (unmerged patches reference live
// namespaces and are skipped conservatively if their namespace is still
// reachable... unreachable ones go with their namespace).
#pragma once

#include <cstdint>

#include "cluster/object_cloud.h"

namespace h2 {

struct ScrubReport {
  std::uint64_t objects_scanned = 0;
  std::uint64_t namespaces_total = 0;
  std::uint64_t namespaces_unreachable = 0;
  std::uint64_t objects_deleted = 0;
  OpCost cost;
};

/// Deletes all H2 objects whose namespace cannot be reached from any
/// account root.  The cluster must be quiescent (no concurrent writers,
/// maintenance drained) -- the same assumption ring administration makes.
ScrubReport ScrubOrphans(ObjectCloud& cloud);

}  // namespace h2
