#include "h2/h2cloud.h"

#include <cassert>

namespace h2 {

H2Cloud::H2Cloud(const H2CloudConfig& config)
    : cloud_(std::make_unique<ObjectCloud>(config.cloud)),
      gossip_(config.gossip_fanout, config.cloud.seed ^ 0x9e3779b9ULL) {
  assert(config.middleware_count >= 1);
  const int zones = std::max(config.cloud.zone_count, 1);
  for (int i = 0; i < config.middleware_count; ++i) {
    middlewares_.push_back(std::make_unique<H2Middleware>(
        *cloud_, static_cast<std::uint32_t>(i + 1), config.h2));
    middlewares_.back()->SetZone(static_cast<std::uint32_t>(i % zones));
    middlewares_.back()->JoinGossip(gossip_);
  }
}

H2Cloud::~H2Cloud() { StopBackground(); }

Status H2Cloud::CreateAccount(std::string_view user) {
  OpMeter meter;
  return middlewares_.front()->CreateAccount(user, meter);
}

Status H2Cloud::DeleteAccount(std::string_view user) {
  OpMeter meter;
  return middlewares_.front()->DeleteAccount(user, meter);
}

Result<std::unique_ptr<H2AccountFs>> H2Cloud::OpenFilesystem(
    std::string_view user, std::size_t middleware_index) {
  if (middleware_index >= middlewares_.size()) {
    return Status::InvalidArgument("no such middleware");
  }
  H2Middleware& mw = *middlewares_[middleware_index];
  OpMeter meter;
  H2_ASSIGN_OR_RETURN(NamespaceId root, mw.AccountRoot(user, meter));
  return std::make_unique<H2AccountFs>(mw, std::string(user), root);
}

void H2Cloud::AnnounceTopology() {
  const std::uint64_t epoch = cloud_->membership_epoch();
  // The publisher never receives its own rumor, so middleware 0 (the
  // bus member the deployment publishes through) learns directly; the
  // rumor then spreads epidemically to the rest of the fleet.
  middlewares_.front()->ObserveTopologyEpoch(epoch);
  gossip_.Publish(middlewares_.front()->node_id() - 1,
                  Rumor{kMembershipRumorTopic, 0,
                        static_cast<std::int64_t>(epoch)});
}

Result<DeviceId> H2Cloud::AddStorageNode() {
  H2_ASSIGN_OR_RETURN(DeviceId id, cloud_->AddStorageNodeDeferred());
  AnnounceTopology();
  return id;
}

Status H2Cloud::RemoveStorageNode(DeviceId id) {
  H2_RETURN_IF_ERROR(cloud_->RemoveStorageNode(id));
  AnnounceTopology();
  return Status::Ok();
}

Result<DeviceId> H2Cloud::ReplaceStorageNode(DeviceId id) {
  H2_ASSIGN_OR_RETURN(DeviceId fresh, cloud_->ReplaceStorageNode(id));
  AnnounceTopology();
  return fresh;
}

Status H2Cloud::SetNodeWeight(DeviceId id, double weight) {
  H2_RETURN_IF_ERROR(cloud_->SetNodeWeight(id, weight));
  AnnounceTopology();
  return Status::Ok();
}

std::size_t H2Cloud::RunMaintenanceStep() {
  std::size_t work = 0;
  for (auto& mw : middlewares_) {
    work += mw->MergePending();
    work += mw->RunLazyCleanup(256);
    // Retention: fold versioned-ring history past the watermark in idle
    // rings (no-op at the default watermark of 0, where merges fold
    // inline).  Counts as work so quiescence implies folded history.
    work += mw->CompactRingHistory(64);
  }
  work += gossip_.Step();
  // Substrate-level repair: replay hinted-handoff queues whose targets
  // answer again.  Counts as work so quiescence waits for revived nodes
  // to catch up (undeliverable hints stay parked and count zero).
  work += cloud_->RunRepairStep();
  // Bounded-rate rebalance: migrate at most max_rebalance_keys_per_step
  // keys toward their post-churn owners.  Counts as work so quiescence
  // implies a fully converged placement.
  work += cloud_->RunRebalanceStep();
  return work;
}

std::size_t H2Cloud::RunMaintenanceToQuiescence(std::size_t max_steps) {
  std::size_t steps = 0;
  while (steps < max_steps) {
    ++steps;
    if (RunMaintenanceStep() == 0) {
      bool idle = gossip_.Idle();
      for (auto& mw : middlewares_) idle = idle && mw->MaintenanceIdle();
      if (idle) break;
    }
  }
  return steps;
}

void H2Cloud::StartBackground(std::chrono::milliseconds period,
                              BackgroundMode mode) {
  // background_mu_ serializes Start/Stop: the CAS alone left a window
  // where a racing StopBackground could join-and-clear the thread vector
  // while Start was still appending to it.
  H2MutexLock lock(background_mu_);
  bool expected = false;
  if (!background_running_.compare_exchange_strong(expected, true)) return;
  if (mode == BackgroundMode::kCoordinated) {
    background_threads_.emplace_back(
        [this, period] { CoordinatedLoop(period); });
    return;
  }
  for (auto& mw : middlewares_) {
    H2Middleware* raw = mw.get();
    background_threads_.emplace_back(
        [this, raw, period] { MergerLoop(*raw, period); });
  }
  background_threads_.emplace_back([this, period] { PumpLoop(period); });
}

void H2Cloud::StopBackground() {
  H2MutexLock lock(background_mu_);
  background_running_.store(false);
  for (auto& t : background_threads_) {
    if (t.joinable()) t.join();
  }
  background_threads_.clear();
}

void H2Cloud::CoordinatedLoop(std::chrono::milliseconds period) {
  // h2lint: mo(loop flag only; Stop's join is the synchronization point)
  while (background_running_.load(std::memory_order_relaxed)) {
    RunMaintenanceStep();
    std::this_thread::sleep_for(period);
  }
}

void H2Cloud::MergerLoop(H2Middleware& mw,
                         std::chrono::milliseconds period) {
  // h2lint: mo(loop flag only; Stop's join is the synchronization point)
  while (background_running_.load(std::memory_order_relaxed)) {
    mw.MergePending();
    mw.RunLazyCleanup(256);
    mw.CompactRingHistory(64);
    std::this_thread::sleep_for(period);
  }
}

void H2Cloud::PumpLoop(std::chrono::milliseconds period) {
  // h2lint: mo(loop flag only; Stop's join is the synchronization point)
  while (background_running_.load(std::memory_order_relaxed)) {
    gossip_.Step();
    cloud_->RunRepairStep();
    cloud_->RunRebalanceStep();
    std::this_thread::sleep_for(period);
  }
}

OpCost H2Cloud::TotalMaintenanceCost() const {
  OpCost total;
  for (const auto& mw : middlewares_) total += mw->maintenance_cost();
  return total;
}

OpCost H2Cloud::TotalHistoryCompactionCost() const {
  OpCost total;
  for (const auto& mw : middlewares_) {
    total += mw->history_compaction_cost();
  }
  return total;
}

}  // namespace h2
