// NameRing: the per-directory child list at the heart of H2 (§3.1).
//
// A NameRing is a list of tuples (child_i, t_i) naming the *direct*
// children of one directory, kept alphabetically sorted (the Formatter's
// serialization order, §4.4).  Deletion is logical: the tuple gains a
// Deleted tag and a fresh timestamp ("fake deletion", §3.3.3a); physical
// removal is deferred until the ring is next *in use* (Compact()).
//
// The merge algorithm (§3.3.2) treats a patch as a virtual NameRing and
// folds it in child-by-child: a child present in both sides keeps the
// higher-ranked tuple; a child present only in the patch is inserted;
// nothing is ever physically removed by a merge.  Tuples of the same
// child are totally ordered -- larger timestamp first, then deletion
// over creation, then directory over file -- so even same-tick
// collisions from different replicas resolve identically everywhere and
// Merge is a join: commutative, associative and idempotent
// (property-tested in tests/name_ring_property_test.cc), which is what
// lets the asynchronous maintenance protocol converge regardless of
// patch arrival order.
//
// The ring also carries a version vector {node -> highest merged patch
// number} so a middleware can tell whether its own submitted patches have
// reached the stored ring (used for gossip-driven repair after concurrent
// read-merge-write races; see h2/middleware.cc).
//
// --- Versioned rings (DESIGN.md §13) ---------------------------------------
// The ring is additionally a *versioned* object:
//
//  * `dir_version()` is a monotone virtual timestamp.  Apply/Merge raise
//    it to the newest tuple timestamp folded in, and the merge path bumps
//    it to the merge tick (BumpVersion) before the ring is stored, so the
//    stored version equals the version the merge announces.
//  * Superseded tuples are retained as per-name *history*.  A tuple that
//    loses a merge is recorded just like a tuple that is overridden, so
//    the {current} ∪ {history} set per name -- and therefore every
//    versioned read -- is independent of patch arrival order.
//  * `FindAt` / `LiveChildrenAt` answer time-travel reads: the state of
//    the ring as of any version >= `history_floor()`.
//  * `CompactHistory(cutoff)` folds history at or below `cutoff` (keeping
//    one floor "base" tuple per name while the current tuple is newer
//    than the cutoff) and raises the floor; physical tombstone removal
//    (Compact / PruneTombstones) drops the name's history and raises the
//    floor to the tombstone time, so pruned names can never resurrect
//    through a versioned read.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "fs/filesystem.h"

namespace h2 {

struct RingTuple {
  std::string name;
  VirtualNanos timestamp = 0;  // creation or deletion time (the paper's t_i)
  EntryKind kind = EntryKind::kFile;
  bool deleted = false;        // the Deleted tag

  friend bool operator==(const RingTuple&, const RingTuple&) = default;
};

class NameRing {
 public:
  NameRing() = default;

  /// Applies one tuple under the merge rule: inserted if the child is new,
  /// overriding if it supersedes the stored one.  The superseded side (or
  /// the losing incoming tuple) is retained as history.  Returns true if
  /// the current state changed.
  bool Apply(RingTuple tuple);

  /// The tuple for `name`, including tombstoned ones; nullptr if absent.
  const RingTuple* Find(std::string_view name) const;

  /// A child that exists and is not tombstoned.
  bool HasLive(std::string_view name) const;

  /// The NameRing merging algorithm: fold `patch` (same representation)
  /// into this ring.  Returns the number of tuples changed.
  std::size_t Merge(const NameRing& patch);

  /// Physically drops tombstoned tuples ("really removing the tuple ...
  /// until this NameRing is in use", §3.3.2) together with their history,
  /// raising the history floor past them.  Returns tuples removed.
  std::size_t Compact();

  /// Live children in alphabetical order.
  std::vector<RingTuple> LiveChildren() const;

  /// Every tuple, tombstones included, in alphabetical order.
  std::vector<RingTuple> AllTuples() const;

  /// Physically removes tombstones whose deletion timestamp is <= cutoff
  /// (the compaction safety rule; see h2/config.h tombstone_gc_age),
  /// together with their history; the history floor rises to the newest
  /// pruned tombstone.  Returns tuples removed.
  std::size_t PruneTombstones(VirtualNanos cutoff);

  std::size_t tuple_count() const { return tuples_.size(); }
  std::size_t live_count() const;
  std::size_t tombstone_count() const { return tuple_count() - live_count(); }

  // --- directory version & history -----------------------------------------
  /// Monotone directory version: at least the newest tuple timestamp ever
  /// applied; the merge path bumps it to the merge tick before storing.
  VirtualNanos dir_version() const { return dir_version_; }
  /// Raises dir_version to `version` (no-op if already past it).
  void BumpVersion(VirtualNanos version);

  /// Oldest version that time-travel reads can still answer.
  VirtualNanos history_floor() const { return history_floor_; }
  /// Retained superseded tuples across all names.
  std::size_t history_count() const;

  /// The max-ranked tuple for `name` with timestamp <= version (tombstones
  /// included); nullopt if the name had no tuple at or before `version`.
  /// InvalidArgument if `version` is below the history floor.
  Result<std::optional<RingTuple>> FindAt(std::string_view name,
                                          VirtualNanos version) const;

  /// Live children as of `version`, alphabetical.  InvalidArgument if
  /// `version` is below the history floor.
  Result<std::vector<RingTuple>> LiveChildrenAt(VirtualNanos version) const;

  /// Folds history with timestamps <= cutoff: per name, everything older
  /// than the floor "base" (the tuple visible exactly at the cutoff while
  /// the current tuple is newer) is dropped, and the history floor rises
  /// to min(cutoff, dir_version()).  The cutoff is clamped to the oldest
  /// pin, so pinned versions always stay answerable.  Returns history
  /// tuples dropped.
  std::size_t CompactHistory(VirtualNanos cutoff);

  // --- snapshot pins --------------------------------------------------------
  // A pin marks "some reference record reads this directory at `version`":
  // history compaction and tombstone GC clamp their cutoffs to the oldest
  // pin, and lazy cleanup defers teardown of pinned namespaces.  Pins are
  // bookkeeping of the *stored* ring object, maintained by read-modify-
  // write at the clone/unclone site -- they are not replicated state, so
  // Merge deliberately ignores the patch side's pins (a stale local view
  // must not resurrect a released pin).
  void Pin(VirtualNanos version);
  /// Drops one pin at `version`; returns false if none was held.
  bool Unpin(VirtualNanos version);
  /// Total outstanding pins across all versions.
  std::uint64_t pin_count() const;
  const std::map<VirtualNanos, std::uint64_t>& pins() const { return pins_; }

  // --- version vector ------------------------------------------------------
  /// Records that patches up to `patch_no` from `node` are folded in.
  void NoteMerged(std::uint32_t node, std::uint64_t patch_no);
  /// Highest patch number from `node` folded into this ring (0 = none).
  std::uint64_t MergedUpTo(std::uint32_t node) const;
  const std::map<std::uint32_t, std::uint64_t>& version_vector() const {
    return versions_;
  }

  // --- serialization (the Formatter, §4.4) ----------------------------------
  std::string Serialize() const;
  static Result<NameRing> Parse(std::string_view data);

  friend bool operator==(const NameRing& a, const NameRing& b) {
    return a.dir_version_ == b.dir_version_ &&
           a.history_floor_ == b.history_floor_ && a.tuples_ == b.tuples_ &&
           a.history_ == b.history_ && a.versions_ == b.versions_ &&
           a.pins_ == b.pins_;
  }

 private:
  /// Retains a superseded tuple, keeping each name's history sorted by
  /// merge rank and free of duplicates (so merges stay idempotent).
  void RecordHistory(RingTuple tuple);
  /// GC cutoffs never reach past the oldest pinned version.
  VirtualNanos ClampToPins(VirtualNanos cutoff) const;

  // Alphabetical by child name -- the on-disk order the paper specifies.
  std::map<std::string, RingTuple, std::less<>> tuples_;
  // Superseded tuples per name, rank-ascending (newest last).  Invariant:
  // every key here also has a current tuple in tuples_, and every history
  // tuple ranks strictly below that current tuple.
  std::map<std::string, std::vector<RingTuple>, std::less<>> history_;
  std::map<std::uint32_t, std::uint64_t> versions_;
  // Pinned version -> reference count (see the snapshot-pins section).
  std::map<VirtualNanos, std::uint64_t> pins_;
  VirtualNanos dir_version_ = 0;
  VirtualNanos history_floor_ = 0;
};

}  // namespace h2
