// NameRing: the per-directory child list at the heart of H2 (§3.1).
//
// A NameRing is a list of tuples (child_i, t_i) naming the *direct*
// children of one directory, kept alphabetically sorted (the Formatter's
// serialization order, §4.4).  Deletion is logical: the tuple gains a
// Deleted tag and a fresh timestamp ("fake deletion", §3.3.3a); physical
// removal is deferred until the ring is next *in use* (Compact()).
//
// The merge algorithm (§3.3.2) treats a patch as a virtual NameRing and
// folds it in child-by-child: a child present in both sides keeps the
// higher-ranked tuple; a child present only in the patch is inserted;
// nothing is ever physically removed by a merge.  Tuples of the same
// child are totally ordered -- larger timestamp first, then deletion
// over creation, then directory over file -- so even same-tick
// collisions from different replicas resolve identically everywhere and
// Merge is a join: commutative, associative and idempotent
// (property-tested in tests/name_ring_property_test.cc), which is what
// lets the asynchronous maintenance protocol converge regardless of
// patch arrival order.
//
// The ring also carries a version vector {node -> highest merged patch
// number} so a middleware can tell whether its own submitted patches have
// reached the stored ring (used for gossip-driven repair after concurrent
// read-merge-write races; see h2/middleware.cc).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "fs/filesystem.h"

namespace h2 {

struct RingTuple {
  std::string name;
  VirtualNanos timestamp = 0;  // creation or deletion time (the paper's t_i)
  EntryKind kind = EntryKind::kFile;
  bool deleted = false;        // the Deleted tag

  friend bool operator==(const RingTuple&, const RingTuple&) = default;
};

class NameRing {
 public:
  NameRing() = default;

  /// Applies one tuple under the merge rule: inserted if the child is new,
  /// overriding if its timestamp is strictly larger than the stored one.
  /// Returns true if the ring changed.
  bool Apply(RingTuple tuple);

  /// The tuple for `name`, including tombstoned ones; nullptr if absent.
  const RingTuple* Find(std::string_view name) const;

  /// A child that exists and is not tombstoned.
  bool HasLive(std::string_view name) const;

  /// The NameRing merging algorithm: fold `patch` (same representation)
  /// into this ring.  Returns the number of tuples changed.
  std::size_t Merge(const NameRing& patch);

  /// Physically drops tombstoned tuples ("really removing the tuple ...
  /// until this NameRing is in use", §3.3.2).  Returns tuples removed.
  std::size_t Compact();

  /// Live children in alphabetical order.
  std::vector<RingTuple> LiveChildren() const;

  /// Every tuple, tombstones included, in alphabetical order.
  std::vector<RingTuple> AllTuples() const;

  /// Physically removes tombstones whose deletion timestamp is <= cutoff
  /// (the compaction safety rule; see h2/config.h tombstone_gc_age).
  /// Returns tuples removed.
  std::size_t PruneTombstones(VirtualNanos cutoff);

  std::size_t tuple_count() const { return tuples_.size(); }
  std::size_t live_count() const;
  std::size_t tombstone_count() const { return tuple_count() - live_count(); }

  // --- version vector ------------------------------------------------------
  /// Records that patches up to `patch_no` from `node` are folded in.
  void NoteMerged(std::uint32_t node, std::uint64_t patch_no);
  /// Highest patch number from `node` folded into this ring (0 = none).
  std::uint64_t MergedUpTo(std::uint32_t node) const;
  const std::map<std::uint32_t, std::uint64_t>& version_vector() const {
    return versions_;
  }

  // --- serialization (the Formatter, §4.4) ----------------------------------
  std::string Serialize() const;
  static Result<NameRing> Parse(std::string_view data);

  friend bool operator==(const NameRing& a, const NameRing& b) {
    return a.tuples_ == b.tuples_ && a.versions_ == b.versions_;
  }

 private:
  // Alphabetical by child name -- the on-disk order the paper specifies.
  std::map<std::string, RingTuple, std::less<>> tuples_;
  std::map<std::uint32_t, std::uint64_t> versions_;
};

}  // namespace h2
