#include "h2/monitor.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"

namespace h2 {

std::uint64_t MonitorSnapshot::TotalPatchesSubmitted() const {
  std::uint64_t total = 0;
  for (const auto& mw : middlewares) total += mw.counters.patches_submitted;
  return total;
}

std::uint64_t MonitorSnapshot::TotalPatchesMerged() const {
  std::uint64_t total = 0;
  for (const auto& mw : middlewares) total += mw.counters.patches_merged;
  return total;
}

std::uint64_t MonitorSnapshot::TotalGossipRepairs() const {
  std::uint64_t total = 0;
  for (const auto& mw : middlewares) total += mw.counters.gossip_repairs;
  return total;
}

std::uint64_t MonitorSnapshot::HintsPending() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes) total += n.hints_pending;
  return total;
}

std::uint64_t MonitorSnapshot::HintsOverflowed() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes) total += n.hints_overflowed;
  return total;
}

double MonitorSnapshot::ResolveCacheHitRate() const {
  std::uint64_t hits = 0, misses = 0;
  for (const auto& mw : middlewares) {
    hits += mw.counters.resolve_cache_hits;
    misses += mw.counters.resolve_cache_misses;
  }
  if (hits + misses == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(hits + misses);
}

std::uint64_t MonitorSnapshot::TotalSnapshotClones() const {
  std::uint64_t total = 0;
  for (const auto& mw : middlewares) total += mw.counters.snapshot_clones;
  return total;
}

std::uint64_t MonitorSnapshot::TotalHistoryFolded() const {
  std::uint64_t total = 0;
  for (const auto& mw : middlewares) {
    total += mw.counters.history_tuples_folded;
  }
  return total;
}

bool MonitorSnapshot::FullyConverged() const {
  return std::all_of(middlewares.begin(), middlewares.end(),
                     [](const MiddlewareSnapshot& mw) { return mw.idle; });
}

double MonitorSnapshot::LoadImbalance() const {
  if (nodes.empty()) return 1.0;
  std::uint64_t max = 0, sum = 0;
  for (const auto& n : nodes) {
    max = std::max(max, n.objects);
    sum += n.objects;
  }
  if (sum == 0) return 1.0;
  return static_cast<double>(max) * static_cast<double>(nodes.size()) /
         static_cast<double>(sum);
}

std::string MonitorSnapshot::ToText() const {
  std::string out;
  char buf[256];

  std::snprintf(buf, sizeof(buf),
                "== H2Cloud monitor ==\n"
                "objects: %llu logical / %llu raw replicas, %s logical\n"
                "ring: %zu partitions across %zu zone(s), load imbalance "
                "%.3f\n",
                static_cast<unsigned long long>(logical_objects),
                static_cast<unsigned long long>(raw_objects),
                HumanBytes(logical_bytes).c_str(), ring_partitions,
                ring_zones, LoadImbalance());
  out += buf;

  out += "-- middlewares --\n";
  for (const auto& mw : middlewares) {
    std::snprintf(
        buf, sizeof(buf),
        "  node %02u zone %u: %llu patches submitted, %llu merged, %llu "
        "rumors, %llu repairs, %llu tombstones compacted, maintenance "
        "%.1f ms, %s\n",
        mw.node_id, mw.zone,
        static_cast<unsigned long long>(mw.counters.patches_submitted),
        static_cast<unsigned long long>(mw.counters.patches_merged),
        static_cast<unsigned long long>(mw.counters.gossip_rumors_handled),
        static_cast<unsigned long long>(mw.counters.gossip_repairs),
        static_cast<unsigned long long>(mw.counters.tombstones_compacted),
        mw.maintenance.elapsed_ms(), mw.idle ? "idle" : "BUSY");
    out += buf;
    const std::uint64_t lookups = mw.counters.resolve_cache_hits +
                                  mw.counters.resolve_cache_misses;
    std::snprintf(
        buf, sizeof(buf),
        "           resolve cache: %llu hits, %llu misses (%.1f%% hit "
        "rate), %llu invalidations\n",
        static_cast<unsigned long long>(mw.counters.resolve_cache_hits),
        static_cast<unsigned long long>(mw.counters.resolve_cache_misses),
        lookups == 0
            ? 0.0
            : 100.0 * static_cast<double>(mw.counters.resolve_cache_hits) /
                  static_cast<double>(lookups),
        static_cast<unsigned long long>(
            mw.counters.resolve_cache_invalidations));
    out += buf;
  }

  out += "-- storage nodes --\n";
  for (const auto& n : nodes) {
    std::snprintf(buf, sizeof(buf), "  %-8s zone %u: %8llu objects, %10s%s%s\n",
                  n.name.c_str(), n.zone,
                  static_cast<unsigned long long>(n.objects),
                  HumanBytes(n.logical_bytes).c_str(),
                  n.hints_pending != 0 ? "  [hints pending]" : "",
                  n.down ? "  [DOWN]" : "");
    out += buf;
  }

  std::snprintf(
      buf, sizeof(buf),
      "-- replica repair --\n"
      "  hints: %llu queued, %llu replayed, %llu pending, %llu overflowed\n"
      "  pushes: %llu read-repair, %llu anti-entropy (%llu divergent keys "
      "seen)\n",
      static_cast<unsigned long long>(repair.hints_queued),
      static_cast<unsigned long long>(repair.hints_replayed),
      static_cast<unsigned long long>(HintsPending()),
      static_cast<unsigned long long>(HintsOverflowed()),
      static_cast<unsigned long long>(repair.read_repairs_pushed),
      static_cast<unsigned long long>(repair.scrub_repairs_pushed),
      static_cast<unsigned long long>(repair.divergent_keys_found));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  failed ops: %llu puts, %llu deletes, %llu copies; background "
      "repair cost %.1f ms\n",
      static_cast<unsigned long long>(repair.failed_puts),
      static_cast<unsigned long long>(repair.failed_deletes),
      static_cast<unsigned long long>(repair.failed_copies),
      repair_cost.elapsed_ms());
  out += buf;

  std::snprintf(
      buf, sizeof(buf),
      "-- storage backend (%s) --\n"
      "  %llu records logged, %llu fsyncs across %llu segments "
      "(%.1f ms fsync time); %llu crashes, %llu recoveries "
      "(%llu records replayed, %llu lost, %llu torn)\n",
      backend_name.c_str(),
      static_cast<unsigned long long>(backend.records_logged),
      static_cast<unsigned long long>(backend.fsyncs),
      static_cast<unsigned long long>(backend.segments),
      ToMillis(backend.fsync_nanos),
      static_cast<unsigned long long>(backend.crashes),
      static_cast<unsigned long long>(backend.recoveries),
      static_cast<unsigned long long>(backend.records_replayed),
      static_cast<unsigned long long>(backend.records_lost),
      static_cast<unsigned long long>(backend.torn_records_dropped));
  out += buf;

  std::snprintf(
      buf, sizeof(buf),
      "-- batched I/O --\n"
      "  %llu batches, %llu ops (mean width %.1f); serial %.1f ms -> "
      "critical path %.1f ms (%.0f%% saved)\n",
      static_cast<unsigned long long>(batch.batches),
      static_cast<unsigned long long>(batch.batched_ops),
      batch.mean_width(), ToMillis(batch.serial_cost),
      ToMillis(batch.critical_cost), 100.0 * batch.savings());
  out += buf;

  std::snprintf(
      buf, sizeof(buf),
      "-- membership & rebalancing --\n"
      "  epoch %llu, %zu keys pending; %llu steps moved %llu keys "
      "(%llu copied, %llu dropped, %s), %llu hints migrated, "
      "cost %.1f ms\n",
      static_cast<unsigned long long>(membership_epoch), rebalance_pending,
      static_cast<unsigned long long>(rebalance.steps),
      static_cast<unsigned long long>(rebalance.keys_moved),
      static_cast<unsigned long long>(rebalance.objects_copied),
      static_cast<unsigned long long>(rebalance.objects_dropped),
      HumanBytes(rebalance.bytes_copied).c_str(),
      static_cast<unsigned long long>(rebalance.hints_migrated),
      rebalance_cost.elapsed_ms());
  out += buf;

  std::uint64_t clones = 0, cows = 0, pinned = 0, unpinned = 0;
  std::uint64_t vreads = 0, passes = 0, preserved = 0;
  for (const auto& mw : middlewares) {
    clones += mw.counters.snapshot_clones;
    cows += mw.counters.snapshot_cow_materializations;
    pinned += mw.counters.rings_pinned;
    unpinned += mw.counters.rings_unpinned;
    vreads += mw.counters.versioned_reads;
    passes += mw.counters.history_compaction_passes;
    preserved += mw.counters.snapshot_content_preserved;
  }
  std::snprintf(
      buf, sizeof(buf),
      "-- versioning & snapshots --\n"
      "  %llu clones (%llu COW materializations), %llu rings pinned / "
      "%llu unpinned, %llu objects preserved; %llu versioned reads; "
      "history: %llu tuples folded over %llu passes, cost %.1f ms\n",
      static_cast<unsigned long long>(clones),
      static_cast<unsigned long long>(cows),
      static_cast<unsigned long long>(pinned),
      static_cast<unsigned long long>(unpinned),
      static_cast<unsigned long long>(preserved),
      static_cast<unsigned long long>(vreads),
      static_cast<unsigned long long>(TotalHistoryFolded()),
      static_cast<unsigned long long>(passes),
      history_compaction_cost.elapsed_ms());
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "-- gossip --\n  %llu published, %llu delivered, %llu "
                "suppressed, %llu rounds\n",
                static_cast<unsigned long long>(gossip.published),
                static_cast<unsigned long long>(gossip.delivered),
                static_cast<unsigned long long>(gossip.suppressed),
                static_cast<unsigned long long>(gossip.rounds));
  out += buf;
  return out;
}

MonitorSnapshot CollectSnapshot(H2Cloud& cloud) {
  MonitorSnapshot snapshot;
  for (std::size_t i = 0; i < cloud.middleware_count(); ++i) {
    H2Middleware& mw = cloud.middleware(i);
    MiddlewareSnapshot m;
    m.node_id = mw.node_id();
    m.zone = mw.zone();
    // One locked read per middleware: counters, maintenance cost and
    // idleness must come from the same instant or a merge landing between
    // separate reads shows patches_merged without its maintenance charge.
    const H2Middleware::StatsSnapshot stats = mw.Snapshot();
    m.counters = stats.counters;
    m.maintenance = stats.maintenance;
    m.idle = stats.idle;
    snapshot.middlewares.push_back(m);
  }
  ObjectCloud& oc = cloud.cloud();
  for (std::size_t i = 0; i < oc.node_count(); ++i) {
    StorageNode& node = oc.node(i);
    NodeSnapshot n;
    n.name = node.name();
    n.zone = node.zone();
    n.objects = node.object_count();
    n.logical_bytes = node.logical_bytes();
    n.hints_pending = node.hint_count();
    n.hints_overflowed = node.hint_overflow_count();
    n.down = node.IsDown();
    snapshot.nodes.push_back(std::move(n));
    snapshot.backend += node.backend_stats();
    if (i == 0) snapshot.backend_name = node.backend_name();
  }
  snapshot.gossip = cloud.gossip().stats();
  snapshot.repair = oc.repair_stats();
  snapshot.repair_cost = oc.repair_cost();
  snapshot.batch = oc.batch_stats();
  snapshot.rebalance = oc.rebalance_stats();
  snapshot.rebalance_cost = oc.rebalance_cost();
  snapshot.history_compaction_cost = cloud.TotalHistoryCompactionCost();
  snapshot.membership_epoch = oc.membership_epoch();
  snapshot.rebalance_pending = oc.RebalancePending();
  snapshot.logical_objects = oc.LogicalObjectCount();
  snapshot.raw_objects = oc.RawObjectCount();
  snapshot.logical_bytes = oc.LogicalBytes();
  snapshot.ring_partitions = oc.ring().partition_count();
  snapshot.ring_zones = oc.ring().active_zone_count();
  return snapshot;
}

}  // namespace h2
