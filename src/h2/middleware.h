// H2Middleware: the key component of H2Cloud (§4.2).
//
// One middleware embodies the H2 data structure and its algorithms:
//
//   * H2 Lookup -- file access through a namespace-decorated relative path
//     (O(1), "quick method") or a full path walked level-by-level (O(d));
//   * the filesystem operations (WRITE/READ/MKDIR/RMDIR/MOVE/RENAME/LIST/
//     COPY), each translated to flat object primitives;
//   * the NameRing Maintenance module -- patch submission (phase 1),
//     intra-node merging by the Background Merger (phase 2 step 1) and
//     inter-node synchronization via gossip (phase 2 step 2), with the
//     per-NameRing File Descriptors held in a File Descriptor Cache (§4.5);
//   * concurrency avoidance: fake deletion and write blocking (§3.3.3).
//
// Deployments run several middlewares over one ObjectCloud; each one is
// identified by a node number that namespaces its UUIDs and patch keys.
//
// Thread model: all mutable middleware state (descriptor cache, resolve
// cache, cleanup queue, counters) sits behind one mutex, never held across
// cloud I/O.  Foreground filesystem calls, the background merger thread
// and gossip handlers may run concurrently.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/object_cloud.h"
#include "common/status.h"
#include "fs/filesystem.h"
#include "gossip/gossip.h"
#include "h2/config.h"
#include "h2/intent_log.h"
#include "h2/name_ring.h"
#include "h2/records.h"
#include "h2/resolve_cache.h"
#include "hash/uuid.h"

namespace h2 {

/// Running totals a middleware exposes for tests and experiment reports.
struct H2Counters {
  std::uint64_t patches_submitted = 0;
  std::uint64_t patches_merged = 0;
  std::uint64_t merge_passes = 0;
  std::uint64_t gossip_rumors_handled = 0;
  std::uint64_t gossip_repairs = 0;    // lost concurrent merges re-applied
  std::uint64_t tombstones_compacted = 0;
  std::uint64_t cleanup_objects_deleted = 0;
  std::uint64_t resolve_cache_hits = 0;
  std::uint64_t resolve_cache_misses = 0;
  std::uint64_t resolve_cache_invalidations = 0;
  std::uint64_t topology_updates = 0;  // membership epochs learned
};

/// Gossip topic carrying cluster-membership epochs.  '!' cannot start a
/// NamespaceId, so the topic can never collide with a NameRing rumor.
inline constexpr char kMembershipRumorTopic[] = "!membership";

class H2Middleware {
 public:
  /// `node_id` must be unique among middlewares sharing a cloud.
  H2Middleware(ObjectCloud& cloud, std::uint32_t node_id,
               H2Config config = {});
  ~H2Middleware();  // out-of-line: Descriptor is an incomplete type here

  H2Middleware(const H2Middleware&) = delete;
  H2Middleware& operator=(const H2Middleware&) = delete;

  std::uint32_t node_id() const { return node_; }
  ObjectCloud& cloud() { return cloud_; }
  const H2Config& config() const { return config_; }

  /// Zone (data center) this middleware runs in; set before serving
  /// traffic.  Charged reads prefer same-zone replicas (§4.1's
  /// geographically distributed deployment).
  void SetZone(std::uint32_t zone) { zone_ = zone; }
  std::uint32_t zone() const { return zone_; }

  // --- Account APIs (§4.3) -------------------------------------------------
  Status CreateAccount(std::string_view user, OpMeter& meter);
  Status DeleteAccount(std::string_view user, OpMeter& meter);
  Result<NamespaceId> AccountRoot(std::string_view user, OpMeter& meter);

  // --- Directory & File Content APIs, account-root scoped -------------------
  // `path` is normalized ("/a/b"); callers go through H2AccountFs which
  // normalizes and owns the OpMeter.
  Status WriteFile(const NamespaceId& root, std::string_view path,
                   FileBlob blob, OpMeter& meter);

  /// Bulk ingest: writes many files and submits ONE combined NameRing
  /// patch per affected directory (a patch is itself a NameRing, §3.3.2,
  /// so multi-tuple patches come for free).  This amortizes the durable
  /// patch commit that dominates single-file WRITE latency -- the fast
  /// path for client sync engines uploading whole folders.  Stops at the
  /// first error; files written before it remain.
  struct BatchEntry {
    std::string path;  // normalized
    FileBlob blob;
  };
  Status WriteFiles(const NamespaceId& root, std::vector<BatchEntry> batch,
                    OpMeter& meter);
  Result<FileBlob> ReadFile(const NamespaceId& root, std::string_view path,
                            OpMeter& meter);
  Result<FileInfo> Stat(const NamespaceId& root, std::string_view path,
                        OpMeter& meter);
  Status RemoveFile(const NamespaceId& root, std::string_view path,
                    OpMeter& meter);
  Status Mkdir(const NamespaceId& root, std::string_view path,
               OpMeter& meter);
  Status Rmdir(const NamespaceId& root, std::string_view path,
               OpMeter& meter);
  Status Move(const NamespaceId& root, std::string_view from,
              std::string_view to, OpMeter& meter);
  Result<std::vector<DirEntry>> List(const NamespaceId& root,
                                     std::string_view path,
                                     ListDetail detail, OpMeter& meter);

  /// Paged LIST (Swift-style marker/limit).  The paper's workloads hold
  /// up to half a million files in one directory (§5.1); a client should
  /// not have to stat all of them to render the first screen.  Returns
  /// children strictly after `start_after` (empty = from the beginning),
  /// at most `limit`; detailed metadata is fetched only for the page.
  struct Page {
    std::vector<DirEntry> entries;
    bool truncated = false;       // more children remain
    std::string next_marker;      // pass back as start_after
  };
  Result<Page> ListPaged(const NamespaceId& root, std::string_view path,
                         ListDetail detail, std::string_view start_after,
                         std::size_t limit, OpMeter& meter);
  Status Copy(const NamespaceId& root, std::string_view from,
              std::string_view to, OpMeter& meter);

  // --- the quick method (§3.2) ----------------------------------------------
  /// O(1) file access via a namespace-decorated relative path: one HEAD.
  Result<FileInfo> StatRelative(const NamespaceId& ns, std::string_view name,
                                OpMeter& meter);
  /// Resolves a full directory path to its namespace (the handle internal
  /// operations pass around).
  Result<NamespaceId> ResolvePath(const NamespaceId& root,
                                  std::string_view path, OpMeter& meter);

  // --- NameRing maintenance (§3.3) -------------------------------------------
  /// Phase-2 step 1: merge this node's pending patches into their
  /// NameRings.  Returns the number of patches merged.  Costs are charged
  /// to the maintenance meter (or the foreground meter under the
  /// synchronous-maintenance ablation).
  std::size_t MergePending();
  /// Merges one namespace's pending patches; returns patches merged.
  std::size_t MergeNamespace(const NamespaceId& ns);
  /// Processes up to `max_objects` deletions from the lazy-cleanup queue
  /// left behind by RMDIR.  Returns objects deleted.
  std::size_t RunLazyCleanup(std::size_t max_objects = ~std::size_t{0});
  /// Re-drives MOVEs a crashed predecessor (same node id) journaled but
  /// did not finish.  Every redo step is idempotent.  Returns the number
  /// of intents completed.
  std::size_t RecoverIntents();
  IntentLog& intent_log() { return intents_; }
  /// True when no patches await merging and the cleanup queue is empty.
  bool MaintenanceIdle() const;

  /// Joins a gossip bus (phase-2 step 2).  The middleware announces its
  /// NameRing merges and repairs/fetches on incoming rumors.
  void JoinGossip(GossipBus& bus);

  /// Membership epoch learned (over gossip or told directly by the
  /// deployment).  Monotonic: stale/duplicate epochs are no-ops.  On
  /// news, the resolve cache is flushed -- cached placements may point at
  /// retired replicas.  Returns true iff the epoch was news (gossip
  /// keeps forwarding exactly while handlers report news).
  bool ObserveTopologyEpoch(std::uint64_t epoch);
  /// Highest membership epoch observed so far.
  std::uint64_t topology_epoch() const {
    std::lock_guard lock(mu_);
    return topology_epoch_;
  }

  /// Cumulative background cost (merging, cleanup, gossip fetches).
  OpCost maintenance_cost() const;
  H2Counters counters() const;

  /// One coherent statistics snapshot: counters, maintenance cost and
  /// idleness read under a single mu_ acquisition.  Reading them through
  /// the individual accessors lets a concurrent merge land between the
  /// reads -- patches_merged then includes work the maintenance cost does
  /// not (torn snapshot), which is exactly what monitor reports must never
  /// show.
  struct StatsSnapshot {
    H2Counters counters;
    OpCost maintenance;
    bool idle = true;
  };
  StatsSnapshot Snapshot() const;

 private:
  struct Descriptor;  // the per-NameRing File Descriptor (§4.5)

  // -- lookup helpers --
  Result<DirRecord> LoadDirRecord(const NamespaceId& parent_ns,
                                  std::string_view name, OpMeter& meter);
  Result<NamespaceId> ResolveParent(const NamespaceId& root,
                                    std::string_view normalized_path,
                                    OpMeter& meter);
  /// GET + parse a NameRing, overlaying this node's unmerged patches so
  /// the middleware reads its own writes.
  Result<NameRing> LoadNameRing(const NamespaceId& ns, OpMeter& meter);

  // -- maintenance internals --
  Status SubmitPatch(const NamespaceId& ns, RingTuple tuple, OpMeter& meter);
  Status SubmitPatchTuples(const NamespaceId& ns,
                           std::vector<RingTuple> tuples, OpMeter& meter);
  std::size_t MergeNamespaceLocked(const NamespaceId& ns,
                                   std::unique_lock<std::mutex>& lock,
                                   OpMeter& meter);
  bool HandleRumor(const Rumor& rumor);
  void Announce(const NamespaceId& ns, VirtualNanos version);

  // -- locked statistics internals (call with mu_ held) --
  bool MaintenanceIdleLocked() const;
  H2Counters CountersLocked() const;

  /// Virtual clock the metered operation runs against: the meter's bound
  /// shard clock domain when set (sharded engine), else the cloud's
  /// global clock.  Every foreground timestamp the middleware mints
  /// (ring tuples, directory records, namespace UUIDs) must come from
  /// here so a shard's timestamps depend only on its own op order.
  SimClock& ClockFor(const OpMeter& meter) const;

  // -- shared-state helpers (call with mu_ held) --
  Descriptor& DescriptorFor(const NamespaceId& ns);

  // -- op helpers --
  Status CopyTree(const NamespaceId& src_ns, const NamespaceId& dst_ns,
                  OpMeter& meter);
  Status MaybeCompact(const NamespaceId& ns, NameRing& ring, OpMeter& meter);

  ObjectCloud& cloud_;
  const std::uint32_t node_;
  const H2Config config_;
  std::uint32_t zone_ = 0;

  mutable std::mutex mu_;
  NamespaceMinter minter_;
  // The versioned resolution cache (h2/resolve_cache.h); all accesses
  // under mu_, fills validated against revision snapshots taken under mu_
  // before the corresponding cloud read.
  H2ResolveCache resolve_cache_;
  std::unordered_map<NamespaceId, std::unique_ptr<Descriptor>> descriptors_;
  std::unordered_set<NamespaceId> write_blocked_;  // §3.3.3(b)
  IntentLog intents_;
  std::deque<NamespaceId> cleanup_queue_;
  H2Counters counters_;
  OpMeter maintenance_meter_;
  std::uint64_t topology_epoch_ = 0;  // highest membership epoch observed

  GossipBus* gossip_ = nullptr;
  std::uint32_t gossip_member_ = 0;
};

}  // namespace h2
