// H2Middleware: the key component of H2Cloud (§4.2).
//
// One middleware embodies the H2 data structure and its algorithms:
//
//   * H2 Lookup -- file access through a namespace-decorated relative path
//     (O(1), "quick method") or a full path walked level-by-level (O(d));
//   * the filesystem operations (WRITE/READ/MKDIR/RMDIR/MOVE/RENAME/LIST/
//     COPY), each translated to flat object primitives;
//   * the NameRing Maintenance module -- patch submission (phase 1),
//     intra-node merging by the Background Merger (phase 2 step 1) and
//     inter-node synchronization via gossip (phase 2 step 2), with the
//     per-NameRing File Descriptors held in a File Descriptor Cache (§4.5);
//   * concurrency avoidance: fake deletion and write blocking (§3.3.3).
//
// Deployments run several middlewares over one ObjectCloud; each one is
// identified by a node number that namespaces its UUIDs and patch keys.
//
// Thread model: all mutable middleware state (descriptor cache, resolve
// cache, cleanup queue, counters) sits behind one mutex (mu_, annotated on
// every member below), never held across cloud I/O.  Foreground filesystem
// calls, the background merger thread and gossip handlers may run
// concurrently.  mu_ orders above resolve_cache.mu_ and the cloud locks in
// tools/lock_hierarchy.txt.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cluster/object_cloud.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "fs/filesystem.h"
#include "gossip/gossip.h"
#include "h2/config.h"
#include "h2/intent_log.h"
#include "h2/name_ring.h"
#include "h2/records.h"
#include "h2/resolve_cache.h"
#include "hash/uuid.h"

namespace h2 {

/// Running totals a middleware exposes for tests and experiment reports.
struct H2Counters {
  std::uint64_t patches_submitted = 0;
  std::uint64_t patches_merged = 0;
  std::uint64_t merge_passes = 0;
  std::uint64_t gossip_rumors_handled = 0;
  std::uint64_t gossip_repairs = 0;    // lost concurrent merges re-applied
  std::uint64_t tombstones_compacted = 0;
  std::uint64_t cleanup_objects_deleted = 0;
  std::uint64_t resolve_cache_hits = 0;
  std::uint64_t resolve_cache_misses = 0;
  std::uint64_t resolve_cache_invalidations = 0;
  std::uint64_t topology_updates = 0;  // membership epochs learned
  // -- versioning & snapshots (DESIGN.md §13) --
  std::uint64_t snapshot_clones = 0;
  std::uint64_t snapshot_cow_materializations = 0;
  std::uint64_t rings_pinned = 0;    // snapshot pins applied
  std::uint64_t rings_unpinned = 0;  // snapshot pins released
  std::uint64_t versioned_reads = 0;  // ListAt/StatAt answered
  std::uint64_t history_tuples_folded = 0;
  std::uint64_t history_compaction_passes = 0;
  // Child objects copied aside before an in-place overwrite/delete in a
  // pinned namespace, so clone reads stay frozen (preserve-on-write).
  std::uint64_t snapshot_content_preserved = 0;
};

/// Gossip topic carrying cluster-membership epochs.  '!' cannot start a
/// NamespaceId, so the topic can never collide with a NameRing rumor.
inline constexpr char kMembershipRumorTopic[] = "!membership";

class H2Middleware {
 public:
  /// `node_id` must be unique among middlewares sharing a cloud.
  H2Middleware(ObjectCloud& cloud, std::uint32_t node_id,
               H2Config config = {});
  ~H2Middleware();  // out-of-line: Descriptor is an incomplete type here

  H2Middleware(const H2Middleware&) = delete;
  H2Middleware& operator=(const H2Middleware&) = delete;

  std::uint32_t node_id() const { return node_; }
  ObjectCloud& cloud() { return cloud_; }
  const H2Config& config() const { return config_; }

  /// Zone (data center) this middleware runs in; set before serving
  /// traffic.  Charged reads prefer same-zone replicas (§4.1's
  /// geographically distributed deployment).
  void SetZone(std::uint32_t zone) { zone_ = zone; }
  std::uint32_t zone() const { return zone_; }

  // --- Account APIs (§4.3) -------------------------------------------------
  Status CreateAccount(std::string_view user, OpMeter& meter);
  Status DeleteAccount(std::string_view user, OpMeter& meter);
  Result<NamespaceId> AccountRoot(std::string_view user, OpMeter& meter);

  // --- Directory & File Content APIs, account-root scoped -------------------
  // `path` is normalized ("/a/b"); callers go through H2AccountFs which
  // normalizes and owns the OpMeter.
  Status WriteFile(const NamespaceId& root, std::string_view path,
                   FileBlob blob, OpMeter& meter);

  /// Bulk ingest: writes many files and submits ONE combined NameRing
  /// patch per affected directory (a patch is itself a NameRing, §3.3.2,
  /// so multi-tuple patches come for free).  This amortizes the durable
  /// patch commit that dominates single-file WRITE latency -- the fast
  /// path for client sync engines uploading whole folders.  Stops at the
  /// first error; files written before it remain.
  struct BatchEntry {
    std::string path;  // normalized
    FileBlob blob;
  };
  Status WriteFiles(const NamespaceId& root, std::vector<BatchEntry> batch,
                    OpMeter& meter);
  Result<FileBlob> ReadFile(const NamespaceId& root, std::string_view path,
                            OpMeter& meter);
  Result<FileInfo> Stat(const NamespaceId& root, std::string_view path,
                        OpMeter& meter);
  Status RemoveFile(const NamespaceId& root, std::string_view path,
                    OpMeter& meter);
  Status Mkdir(const NamespaceId& root, std::string_view path,
               OpMeter& meter);
  Status Rmdir(const NamespaceId& root, std::string_view path,
               OpMeter& meter);
  Status Move(const NamespaceId& root, std::string_view from,
              std::string_view to, OpMeter& meter);
  Result<std::vector<DirEntry>> List(const NamespaceId& root,
                                     std::string_view path,
                                     ListDetail detail, OpMeter& meter);

  /// Paged LIST (Swift-style marker/limit).  The paper's workloads hold
  /// up to half a million files in one directory (§5.1); a client should
  /// not have to stat all of them to render the first screen.  Returns
  /// children strictly after `start_after` (empty = from the beginning),
  /// at most `limit`; detailed metadata is fetched only for the page.
  struct Page {
    std::vector<DirEntry> entries;
    bool truncated = false;       // more children remain
    std::string next_marker;      // pass back as start_after
  };
  Result<Page> ListPaged(const NamespaceId& root, std::string_view path,
                         ListDetail detail, std::string_view start_after,
                         std::size_t limit, OpMeter& meter);
  Status Copy(const NamespaceId& root, std::string_view from,
              std::string_view to, OpMeter& meter);

  // --- versioned reads & snapshot clones (DESIGN.md §13) --------------------
  /// LIST as of `version`: the directory's children as they were at that
  /// DirVersion, answered from the ring's retained patch history.
  /// InvalidArgument if `version` predates the ring's history floor
  /// (folded away by the watermark).  Through a snapshot clone the view
  /// is additionally capped at the clone's pinned version.
  Result<std::vector<DirEntry>> ListAt(const NamespaceId& root,
                                       std::string_view path,
                                       VirtualNanos version, ListDetail detail,
                                       OpMeter& meter);
  /// Stat as of `version`, answered from the parent ring's history.  Size
  /// and object times come from the live object when it still exists
  /// (file content is not versioned); otherwise they fall back to the
  /// historic tuple's timestamp with size 0.
  Result<FileInfo> StatAt(const NamespaceId& root, std::string_view path,
                          VirtualNanos version, OpMeter& meter);
  /// The directory's current DirVersion (its pinned version through a
  /// snapshot clone) -- the token callers pass back to ListAt/StatAt.
  Result<VirtualNanos> DirVersion(const NamespaceId& root,
                                  std::string_view path, OpMeter& meter);
  /// Clones the directory at `from` to `to` as an O(1)-per-directory
  /// metadata operation: one version-pinned reference record plus one pin
  /// per subtree ring -- no per-file work (contrast COPY's O(n) fan-out).
  /// The clone reads the source's rings at the pinned version; file
  /// content stays shared until a mutation inside the clone materializes
  /// the affected directory copy-on-write.
  Status SnapshotClone(const NamespaceId& root, std::string_view from,
                       std::string_view to, OpMeter& meter);

  // --- the quick method (§3.2) ----------------------------------------------
  /// O(1) file access via a namespace-decorated relative path: one HEAD.
  Result<FileInfo> StatRelative(const NamespaceId& ns, std::string_view name,
                                OpMeter& meter);
  /// Resolves a full directory path to its namespace (the handle internal
  /// operations pass around).
  Result<NamespaceId> ResolvePath(const NamespaceId& root,
                                  std::string_view path, OpMeter& meter);

  // --- NameRing maintenance (§3.3) -------------------------------------------
  /// Phase-2 step 1: merge this node's pending patches into their
  /// NameRings.  Returns the number of patches merged.  Costs are charged
  /// to the maintenance meter (or the foreground meter under the
  /// synchronous-maintenance ablation).
  std::size_t MergePending();
  /// Merges one namespace's pending patches; returns patches merged.
  std::size_t MergeNamespace(const NamespaceId& ns);
  /// Processes up to `max_objects` deletions from the lazy-cleanup queue
  /// left behind by RMDIR, first draining the snapshot unpin queue left
  /// behind by RMDIR-of-clone and COW materialization.  Namespaces whose
  /// rings still carry snapshot pins are parked, not deleted; the last
  /// unpin re-queues them.  Returns work items (objects deleted + unpins
  /// processed).
  std::size_t RunLazyCleanup(std::size_t max_objects = ~std::size_t{0});
  /// Background history compaction (DESIGN.md §13): folds ring patch
  /// history older than `history_watermark` for idle namespaces this
  /// middleware tracks (rings with pending patches fold at their next
  /// merge instead).  Priced on the dedicated history meter.  Returns
  /// history tuples folded.
  std::size_t CompactRingHistory(std::size_t max_rings = ~std::size_t{0});
  /// Re-drives MOVEs a crashed predecessor (same node id) journaled but
  /// did not finish.  Every redo step is idempotent.  Returns the number
  /// of intents completed.
  std::size_t RecoverIntents();
  IntentLog& intent_log() { return intents_; }
  /// True when no patches await merging and the cleanup queue is empty.
  bool MaintenanceIdle() const;

  /// Joins a gossip bus (phase-2 step 2).  The middleware announces its
  /// NameRing merges and repairs/fetches on incoming rumors.
  void JoinGossip(GossipBus& bus);

  /// Membership epoch learned (over gossip or told directly by the
  /// deployment).  Monotonic: stale/duplicate epochs are no-ops.  On
  /// news, the resolve cache is flushed -- cached placements may point at
  /// retired replicas.  Returns true iff the epoch was news (gossip
  /// keeps forwarding exactly while handlers report news).
  bool ObserveTopologyEpoch(std::uint64_t epoch);
  /// Highest membership epoch observed so far.
  std::uint64_t topology_epoch() const {
    H2MutexLock lock(mu_);
    return topology_epoch_;
  }

  /// Cumulative background cost (merging, cleanup, gossip fetches).
  OpCost maintenance_cost() const;
  /// Cumulative background history-compaction cost (its own meter, so the
  /// watermark ablation can price retention separately).
  OpCost history_compaction_cost() const;
  H2Counters counters() const;

  /// One coherent statistics snapshot: counters, maintenance cost and
  /// idleness read under a single mu_ acquisition.  Reading them through
  /// the individual accessors lets a concurrent merge land between the
  /// reads -- patches_merged then includes work the maintenance cost does
  /// not (torn snapshot), which is exactly what monitor reports must never
  /// show.
  struct StatsSnapshot {
    H2Counters counters;
    OpCost maintenance;
    bool idle = true;
  };
  StatsSnapshot Snapshot() const;

 private:
  struct Descriptor;  // the per-NameRing File Descriptor (§4.5)

  /// A resolved directory plus the snapshot context the walk crossed: a
  /// reference record pins everything below it at its version.
  struct DirHandle {
    NamespaceId ns;
    bool pinned = false;
    VirtualNanos version = 0;  // view version when pinned
  };

  // -- lookup helpers --
  Result<DirRecord> LoadDirRecord(const NamespaceId& parent_ns,
                                  std::string_view name, OpMeter& meter);
  /// Version-aware child-object fetch: the live object while it still
  /// predates `version`, otherwise the copy preserved for the pin at
  /// `version` (preserve-on-write), falling back to the live object for
  /// content that was never preserved.
  Result<ObjectValue> GetContentAt(const NamespaceId& ns,
                                   std::string_view name,
                                   VirtualNanos version, OpMeter& meter);
  /// LoadDirRecord against the view pinned at `version` (records deleted
  /// or replaced after the pin resolve to their preserved copies).
  Result<DirRecord> LoadDirRecordAt(const NamespaceId& parent_ns,
                                    std::string_view name,
                                    VirtualNanos version, OpMeter& meter);
  /// Read-side walk: follows reference records without materializing,
  /// carrying the pinned version down the path.
  Result<DirHandle> ResolveDir(const NamespaceId& root, std::string_view path,
                               OpMeter& meter);
  Result<NamespaceId> ResolveParent(const NamespaceId& root,
                                    std::string_view normalized_path,
                                    OpMeter& meter);
  /// Write-side walk: crossing a reference record materializes that
  /// directory copy-on-write, so the returned namespace is always
  /// directly mutable.
  Result<NamespaceId> ResolveDirForWrite(const NamespaceId& root,
                                         std::string_view path,
                                         OpMeter& meter);
  Result<NamespaceId> ResolveParentForWrite(const NamespaceId& root,
                                            std::string_view normalized_path,
                                            OpMeter& meter);
  /// GET + parse a NameRing, overlaying this node's unmerged patches so
  /// the middleware reads its own writes.
  Result<NameRing> LoadNameRing(const NamespaceId& ns, OpMeter& meter);

  // -- snapshot internals (DESIGN.md §13) --
  /// Adds one pin at `version` to every ring in the subtree under `ns`
  /// (a nested reference re-pins its referent at its own older version).
  // `visited` breaks reference cycles: clone chains may legally place a
  // reference back inside its own source's subtree (only direct nesting
  // of the destination under the source is rejected), and the folded-
  // history fallback walks the current view, where such a cycle would
  // otherwise recurse forever.
  Status PinTree(const NamespaceId& ns, VirtualNanos version, OpMeter& meter,
                 std::set<std::pair<NamespaceId, VirtualNanos>>& visited);
  /// COW: replaces the reference record at (parent_ns, name) with a real
  /// directory materialized from the pinned view -- file children are
  /// copied, subdirectories become nested references at the same pinned
  /// version (so only the mutated path materializes).  Releases this
  /// level's pin.  Returns the new directory's namespace.
  Result<NamespaceId> MaterializeReference(const NamespaceId& parent_ns,
                                           std::string_view name,
                                           const DirRecord& record,
                                           OpMeter& meter);
  /// Drains the unpin queue: each entry releases one pin and fans out to
  /// the children visible at the pinned version.  Returns entries
  /// processed.
  std::size_t ProcessUnpins(OpMeter& meter);
  /// Detailed/plain entry construction shared by List and ListAt.
  Result<std::vector<DirEntry>> BuildEntries(
      const NamespaceId& ns, const std::vector<RingTuple>& children,
      ListDetail detail, OpMeter& meter);
  /// Versioned stat of one name inside `ns` (shared by StatAt and by live
  /// Stat through a pinned clone view).
  Result<FileInfo> StatAtInDir(const NamespaceId& ns, std::string_view name,
                               VirtualNanos version, OpMeter& meter);

  // -- maintenance internals --
  Status SubmitPatch(const NamespaceId& ns, RingTuple tuple, OpMeter& meter);
  Status SubmitPatchTuples(const NamespaceId& ns,
                           std::vector<RingTuple> tuples, OpMeter& meter);
  /// Hand-over-hand: enters and leaves with mu_ held, but drops `lock`
  /// around every cloud round-trip (ring GET, merged-ring PUT, patch
  /// deletes).  The analysis cannot model a lock released through a
  /// passed-in guard, so the body is opted out; REQUIRES keeps call
  /// sites honest.
  std::size_t MergeNamespaceLocked(const NamespaceId& ns,
                                   H2ReleasableMutexLock& lock,
                                   OpMeter& meter)
      REQUIRES(mu_) NO_THREAD_SAFETY_ANALYSIS;
  bool HandleRumor(const Rumor& rumor);
  void Announce(const NamespaceId& ns, VirtualNanos version);

  // -- locked statistics internals --
  bool MaintenanceIdleLocked() const REQUIRES(mu_);
  H2Counters CountersLocked() const REQUIRES(mu_);

  /// Virtual clock the metered operation runs against: the meter's bound
  /// shard clock domain when set (sharded engine), else the cloud's
  /// global clock.  Every foreground timestamp the middleware mints
  /// (ring tuples, directory records, namespace UUIDs) must come from
  /// here so a shard's timestamps depend only on its own op order.
  SimClock& ClockFor(const OpMeter& meter) const;

  // -- shared-state helpers --
  Descriptor& DescriptorFor(const NamespaceId& ns) REQUIRES(mu_);

  // -- op helpers --
  /// `at` > 0 copies the view pinned at that version (clone
  /// materialization via COPY of a reference); 0 copies the live view.
  Status CopyTree(const NamespaceId& src_ns, const NamespaceId& dst_ns,
                  OpMeter& meter, VirtualNanos at = 0);
  Status MaybeCompact(const NamespaceId& ns, NameRing& ring, OpMeter& meter);
  /// Preserve-on-write: before an in-place overwrite or delete of
  /// ChildKey(ns, name), copy the current object aside once per snapshot
  /// pin that can still see it, so pinned views keep serving the content
  /// they froze.  No-op (and no cloud traffic) for unpinned namespaces.
  Status PreserveForPins(const NamespaceId& ns, std::string_view name,
                         OpMeter& meter) EXCLUDES(mu_);
  bool HasPreservedHint(const NamespaceId& ns, VirtualNanos version,
                        std::string_view name) const EXCLUDES(mu_);

  ObjectCloud& cloud_;
  const std::uint32_t node_;
  const H2Config config_;
  std::uint32_t zone_ = 0;

  mutable H2Mutex mu_;
  NamespaceMinter minter_ GUARDED_BY(mu_);
  // The directory-version resolution cache (h2/resolve_cache.h): ring
  // fills are validated by the dir_version they carry, child fills by a
  // version-floor snapshot taken before the corresponding cloud read.
  H2ResolveCache resolve_cache_;  // internally synchronized (leaf lock)
  std::unordered_map<NamespaceId, std::unique_ptr<Descriptor>> descriptors_
      GUARDED_BY(mu_);
  std::unordered_set<NamespaceId> write_blocked_ GUARDED_BY(mu_);  // §3.3.3(b)
  IntentLog intents_;  // internally synchronized
  std::deque<NamespaceId> cleanup_queue_ GUARDED_BY(mu_);
  // Pins awaiting lazy release, pushed by RMDIR-of-clone (recursive: the
  // whole pinned subtree) and COW materialization (this ring only -- the
  // nested references keep the subtree pins), drained by RunLazyCleanup.
  struct UnpinEntry {
    NamespaceId ns;
    VirtualNanos version = 0;
    bool recurse = true;
  };
  std::deque<UnpinEntry> unpin_queue_ GUARDED_BY(mu_);
  // Deleted-but-pinned namespaces: teardown resumes when the last pin
  // goes (the unpin path re-queues them for cleanup).
  std::unordered_set<NamespaceId> parked_cleanups_ GUARDED_BY(mu_);
  // Preserve-on-write bookkeeping.  `pinned_ns_` is a conservative hint
  // of namespaces whose stored ring carries snapshot pins (maintained at
  // pin time and on every ring load), gating the preserve check off the
  // unpinned write path.  `preserved_hint_` records which
  // (namespace, pin version, name) copies this middleware wrote, so COW
  // materialization picks preserved sources and the last unpin can
  // delete them without probing.  Both recover lazily from ring loads
  // after a restart (stale entries only cost a fallback to live reads).
  std::set<NamespaceId> pinned_ns_ GUARDED_BY(mu_);
  std::set<std::tuple<NamespaceId, VirtualNanos, std::string>>
      preserved_hint_ GUARDED_BY(mu_);
  H2Counters counters_ GUARDED_BY(mu_);
  OpMeter maintenance_meter_ GUARDED_BY(mu_);
  // Dedicated meter: background history compaction.
  OpMeter history_meter_ GUARDED_BY(mu_);
  // Highest membership epoch observed.
  std::uint64_t topology_epoch_ GUARDED_BY(mu_) = 0;

  GossipBus* gossip_ = nullptr;
  std::uint32_t gossip_member_ = 0;
};

}  // namespace h2
