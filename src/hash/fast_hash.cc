#include "hash/fast_hash.h"

#include <cstring>

namespace h2 {
namespace {

constexpr std::uint64_t kPrime1 = 11400714785074694791ULL;
constexpr std::uint64_t kPrime2 = 14029467366897019727ULL;
constexpr std::uint64_t kPrime3 = 1609587929392839161ULL;
constexpr std::uint64_t kPrime4 = 9650029242287828579ULL;
constexpr std::uint64_t kPrime5 = 2870177450012600261ULL;

std::uint64_t Rotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

std::uint64_t Read64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian hosts only (x86-64 / aarch64)
}

std::uint32_t Read32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t Round(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

std::uint64_t MergeRound(std::uint64_t acc, std::uint64_t val) {
  acc ^= Round(0, val);
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

std::uint64_t XxHash64(std::string_view s, std::uint64_t seed) {
  const char* p = s.data();
  const char* end = p + s.size();
  std::uint64_t h;

  if (s.size() >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    const char* limit = end - 32;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);

    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(s.size());

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(Read32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint8_t>(*p) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace h2
