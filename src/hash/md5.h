// MD5 message digest (RFC 1321).
//
// OpenStack Swift locates objects by the MD5 of their path mapped onto the
// partition ring; we implement the same digest from scratch so the ring
// behaves like Swift's without external dependencies.  MD5 is used here
// purely as a well-distributed placement hash, never for security.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace h2 {

class Md5 {
 public:
  using Digest = std::array<std::uint8_t, 16>;

  Md5();

  /// Incremental interface.
  void Update(const void* data, std::size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }
  Digest Finish();

  /// One-shot helpers.
  static Digest Hash(std::string_view s);
  /// First 8 bytes of the digest as a big-endian integer -- the value the
  /// consistent-hash ring maps to a partition.
  static std::uint64_t Hash64(std::string_view s);
  static std::string HexDigest(std::string_view s);

 private:
  void ProcessBlock(const std::uint8_t block[64]);

  std::uint32_t state_[4];
  std::uint64_t bit_count_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

}  // namespace h2
