#include "hash/uuid.h"

#include <cstdio>

#include "common/strings.h"

namespace h2 {

std::string NamespaceId::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02llu.%02u.%lld",
                static_cast<unsigned long long>(seq), node,
                static_cast<long long>(ts_millis));
  return buf;
}

Result<NamespaceId> NamespaceId::Parse(std::string_view s) {
  const auto parts = Split(s, '.');
  if (parts.size() != 3) {
    return Status::InvalidArgument("bad namespace id: " + std::string(s));
  }
  std::uint64_t seq = 0, node = 0, ts = 0;
  if (!ParseUint64(parts[0], &seq) || !ParseUint64(parts[1], &node) ||
      !ParseUint64(parts[2], &ts) || node > 0xffffffffULL) {
    return Status::InvalidArgument("bad namespace id: " + std::string(s));
  }
  return NamespaceId{seq, static_cast<std::uint32_t>(node),
                     static_cast<std::int64_t>(ts)};
}

}  // namespace h2
