// Fast non-cryptographic hashes: FNV-1a and xxHash64.
//
// MD5 (hash/md5.h) is what the placement ring uses, mirroring OpenStack
// Swift.  These cheaper hashes serve everything that does not need Swift
// compatibility: in-memory hash tables, gossip digests and workload
// sharding.  xxHash64 is implemented from the published specification.
#pragma once

#include <cstdint>
#include <string_view>

namespace h2 {

/// FNV-1a 64-bit.
constexpr std::uint64_t Fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xxHash64 with the given seed.
std::uint64_t XxHash64(std::string_view s, std::uint64_t seed = 0);

}  // namespace h2
