// Namespace UUIDs in the paper's format (ICPP'18 §3.1).
//
// Every directory in an H2 filesystem owns a universally unique namespace
// identifier.  The paper's example: /home/ is "the 6th directory created by
// the 1st storage node at UNIX timestamp 1469346604539", giving the UUID
// "06.01.1469346604539".  The three components are therefore
// (sequence, node, creation-time-millis), rendered as dot-separated
// decimal fields.  Uniqueness holds because a given node's sequence counter
// never repeats.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace h2 {

struct NamespaceId {
  std::uint64_t seq = 0;       // per-node creation sequence number
  std::uint32_t node = 0;      // storage/middleware node that minted it
  std::int64_t ts_millis = 0;  // creation time, UNIX millis

  /// "06.01.1469346604539" -- zero-padded to at least two digits for the
  /// first two fields, exactly like the paper's example.
  std::string ToString() const;

  static Result<NamespaceId> Parse(std::string_view s);

  friend auto operator<=>(const NamespaceId&, const NamespaceId&) = default;
};

/// Mints namespace IDs for one node.  Thread-compatible: each middleware
/// owns its own minter (distinct node numbers keep IDs globally unique).
class NamespaceMinter {
 public:
  explicit NamespaceMinter(std::uint32_t node) : node_(node) {}

  NamespaceId Mint(std::int64_t now_millis) {
    return NamespaceId{++seq_, node_, now_millis};
  }

  std::uint32_t node() const { return node_; }

 private:
  std::uint32_t node_;
  std::uint64_t seq_ = 0;
};

}  // namespace h2

template <>
struct std::hash<h2::NamespaceId> {
  std::size_t operator()(const h2::NamespaceId& id) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(id.seq);
    h = h * 1000003u ^ std::hash<std::uint32_t>{}(id.node);
    h = h * 1000003u ^
        std::hash<std::int64_t>{}(id.ts_millis);
    return h;
  }
};
