// Epidemic dissemination engine (ICPP'18 §3.3.2, step 2).
//
// After a middleware merges patches into a NameRing it must tell the other
// middlewares, "so that each node can eventually have the same NameRing
// views".  The paper uses gossip flooding: each gossip message carries
// tuples (N_i, H_j, t_k) -- NameRing N_i was updated on node H_j at time
// t_k -- and a receiver aborts forwarding when its local timestamp already
// covers the rumor (loop-back avoidance by timestamp comparison).
//
// This module is the protocol engine, independent of NameRings: members
// join with a handler; `Publish` injects a rumor at a member; delivery
// fans out to `fanout` random peers per hop.  The handler returns true if
// the rumor was *news* (keep forwarding) and false if stale (stop) --
// exactly the paper's timestamp rule, supplied by the H2 layer.
//
// Two execution modes:
//   * deterministic: tests and benches call Step()/RunToQuiescence() and
//     observe per-round delivery counts;
//   * threaded: H2Cloud's background pump calls Step() periodically.
// All state is guarded by one mutex; handlers are invoked without the lock
// held so they may publish follow-up rumors.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace h2 {

struct Rumor {
  std::string topic;          // e.g. a NameRing namespace key
  std::uint32_t origin = 0;   // member that produced the update
  std::int64_t version = 0;   // update timestamp t_k
};

struct GossipStats {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;   // handler invocations
  std::uint64_t forwarded = 0;   // fan-out transmissions enqueued
  std::uint64_t suppressed = 0;  // rumors a handler declared stale
  std::uint64_t rounds = 0;
};

class GossipBus {
 public:
  /// `fanout`: peers each member forwards a fresh rumor to.
  explicit GossipBus(int fanout = 3, std::uint64_t seed = 7);

  /// Handler: called on rumor delivery; return true iff the rumor was new
  /// locally (it will then be forwarded onward).
  using Handler = std::function<bool(const Rumor&)>;

  /// Adds a member; returns its id (dense, starting at 0).
  std::uint32_t Join(Handler handler);

  /// Member `from` announces a rumor to `fanout` random peers.
  void Publish(std::uint32_t from, Rumor rumor);

  /// Delivers every message currently queued (one gossip round).
  /// Messages enqueued by handlers during the round run next round.
  /// Returns the number of deliveries made.
  std::size_t Step();

  /// Steps until no messages remain; returns rounds taken.
  /// Stops after `max_rounds` as a runaway guard.
  std::size_t RunToQuiescence(std::size_t max_rounds = 10'000);

  bool Idle() const;
  GossipStats stats() const;
  std::size_t member_count() const;

 private:
  struct Delivery {
    std::uint32_t to;
    Rumor rumor;
  };

  void FanOutLocked(std::uint32_t from, const Rumor& rumor) REQUIRES(mu_);

  const int fanout_;
  mutable H2Mutex mu_;
  std::vector<Handler> members_ GUARDED_BY(mu_);
  std::deque<Delivery> queue_ GUARDED_BY(mu_);
  Rng rng_ GUARDED_BY(mu_);
  GossipStats stats_ GUARDED_BY(mu_);
};

}  // namespace h2
