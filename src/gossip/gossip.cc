#include "gossip/gossip.h"

#include <algorithm>
#include <cassert>

namespace h2 {

GossipBus::GossipBus(int fanout, std::uint64_t seed)
    : fanout_(std::max(fanout, 1)), rng_(seed) {}

std::uint32_t GossipBus::Join(Handler handler) {
  H2MutexLock lock(mu_);
  members_.push_back(std::move(handler));
  return static_cast<std::uint32_t>(members_.size() - 1);
}

void GossipBus::FanOutLocked(std::uint32_t from, const Rumor& rumor) {
  const std::size_t n = members_.size();
  if (n <= 1) return;
  // The first peer is always the ring successor: a fresh rumor therefore
  // walks the whole membership ring even if every random pick lands on an
  // already-informed member, so pure rumor-mongering cannot stall short of
  // full coverage.  The remaining fanout-1 peers are random, which is what
  // gives the epidemic its O(log n) spreading speed.
  const std::size_t want =
      std::min<std::size_t>(static_cast<std::size_t>(fanout_), n - 1);
  const std::uint32_t successor =
      static_cast<std::uint32_t>((from + 1) % n);
  queue_.push_back(Delivery{successor, rumor});
  ++stats_.forwarded;

  std::vector<std::uint32_t> peers;
  peers.reserve(n - 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i != from && i != successor) peers.push_back(i);
  }
  for (std::size_t i = 0; i + 1 < want && i < peers.size(); ++i) {
    const std::size_t j = i + rng_.Below(peers.size() - i);
    std::swap(peers[i], peers[j]);
    queue_.push_back(Delivery{peers[i], rumor});
    ++stats_.forwarded;
  }
}

void GossipBus::Publish(std::uint32_t from, Rumor rumor) {
  H2MutexLock lock(mu_);
  assert(from < members_.size());
  ++stats_.published;
  FanOutLocked(from, rumor);
}

std::size_t GossipBus::Step() {
  // Swap out this round's queue so handler-generated traffic lands in the
  // next round, then deliver without holding the lock.
  std::deque<Delivery> round;
  {
    H2MutexLock lock(mu_);
    if (queue_.empty()) return 0;
    round.swap(queue_);
    ++stats_.rounds;
  }

  std::size_t delivered = 0;
  for (const Delivery& d : round) {
    Handler handler;
    {
      H2MutexLock lock(mu_);
      handler = members_[d.to];
    }
    const bool fresh = handler(d.rumor);
    ++delivered;
    H2MutexLock lock(mu_);
    ++stats_.delivered;
    if (fresh) {
      FanOutLocked(d.to, d.rumor);
    } else {
      ++stats_.suppressed;  // timestamp said: already known; stop here
    }
  }
  return delivered;
}

std::size_t GossipBus::RunToQuiescence(std::size_t max_rounds) {
  std::size_t rounds = 0;
  while (rounds < max_rounds && Step() > 0) ++rounds;
  return rounds;
}

bool GossipBus::Idle() const {
  H2MutexLock lock(mu_);
  return queue_.empty();
}

GossipStats GossipBus::stats() const {
  H2MutexLock lock(mu_);
  return stats_;
}

std::size_t GossipBus::member_count() const {
  H2MutexLock lock(mu_);
  return members_.size();
}

}  // namespace h2
