// Minimal HTTP/1.1 substrate for the H2Cloud web APIs (§4.3).
//
// The paper's H2Middleware serves users "in the form of web services,
// i.e., through a series of web APIs": the Inbound API is an HTTP server
// facing clients, the Outbound API an HTTP client facing the object
// cloud.  This module provides both halves over loopback TCP sockets --
// a real wire protocol, not a mock -- sized for what the system needs:
// request/response framing with Content-Length bodies, header access,
// and a threaded accept loop with a clean shutdown path.
//
// Scope: HTTP/1.1, one request per connection (the server replies with
// "Connection: close"), no TLS, no chunked encoding.  These are
// deliberate simplifications of transport plumbing, not of the paper's
// system; the filesystem semantics live behind the handler.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace h2 {

struct HttpRequest {
  std::string method;   // "GET", "PUT", ...
  std::string target;   // path + optional "?query"
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;

  /// Path portion of the target (before '?').
  std::string Path() const;
  /// Value of a query parameter, or "" if absent.
  std::string Query(std::string_view key) const;
  /// Header value, or "" ("x-op" style lower-case names).
  const std::string& Header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;

  static HttpResponse Text(int status, std::string body);
  static HttpResponse FromStatus(const Status& s, std::string ok_body = "");
};

/// Maps Status codes onto HTTP statuses (NotFound -> 404, ...).
int HttpStatusFor(const Status& s);

/// Percent-encodes everything outside RFC 3986 unreserved + '/'.
/// Request targets must be encoded (the request line is space-delimited).
std::string UrlEncode(std::string_view s);
/// Inverse of UrlEncode; invalid escapes fail.
Result<std::string> UrlDecode(std::string_view s);

/// Serializes/parses HTTP messages (exposed for tests).
std::string SerializeRequest(const HttpRequest& request);
std::string SerializeResponse(const HttpResponse& response);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(std::uint16_t port = 0);
  void Stop();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_;
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  H2Mutex workers_mu_;
  std::vector<std::thread> workers_ GUARDED_BY(workers_mu_);
};

/// Blocking HTTP client: one request per call, new connection each time.
class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port) : port_(port) {}

  Result<HttpResponse> Send(const HttpRequest& request);

  // Convenience wrappers.
  Result<HttpResponse> Get(std::string target);
  Result<HttpResponse> Put(std::string target, std::string body);
  Result<HttpResponse> Post(std::string target,
                            std::map<std::string, std::string> headers,
                            std::string body = "");
  Result<HttpResponse> Delete(std::string target);

 private:
  std::uint16_t port_;
};

}  // namespace h2
