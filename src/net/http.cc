#include "net/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/strings.h"

namespace h2 {
namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Reads until the full header block + Content-Length body is present.
/// Returns false on EOF/parse failure.
bool ReadHttpMessage(int fd, std::string* start_line,
                     std::map<std::string, std::string>* headers,
                     std::string* body) {
  std::string buffer;
  char chunk[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
    header_end = buffer.find("\r\n\r\n");
    if (buffer.size() > (64u << 20)) return false;  // runaway guard
  }

  const std::string head = buffer.substr(0, header_end);
  std::string rest = buffer.substr(header_end + 4);
  const auto lines = Split(head, '\n');
  if (lines.empty()) return false;
  *start_line = std::string(lines[0]);
  if (!start_line->empty() && start_line->back() == '\r') {
    start_line->pop_back();
  }
  std::size_t content_length = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = ToLower(line.substr(0, colon));
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    (*headers)[name] = std::string(value);
    if (name == "content-length") {
      std::uint64_t v = 0;
      if (!ParseUint64(value, &v)) return false;
      content_length = static_cast<std::size_t>(v);
    }
  }
  while (rest.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    rest.append(chunk, static_cast<std::size_t>(n));
  }
  *body = rest.substr(0, content_length);
  return true;
}

bool SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string HttpRequest::Path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::Query(std::string_view key) const {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return "";
  for (auto param : Split(std::string_view(target).substr(q + 1), '&')) {
    const std::size_t eq = param.find('=');
    if (eq == std::string_view::npos) {
      if (param == key) return "";
      continue;
    }
    if (param.substr(0, eq) == key) return std::string(param.substr(eq + 1));
  }
  return "";
}

const std::string& HttpRequest::Header(std::string_view name) const {
  static const std::string kEmpty;
  auto it = headers.find(ToLower(name));
  return it == headers.end() ? kEmpty : it->second;
}

HttpResponse HttpResponse::Text(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  r.headers["content-type"] = "text/plain";
  return r;
}

int HttpStatusFor(const Status& s) {
  switch (s.code()) {
    case ErrorCode::kOk: return 200;
    case ErrorCode::kNotFound: return 404;
    case ErrorCode::kAlreadyExists: return 409;
    case ErrorCode::kInvalidArgument: return 400;
    case ErrorCode::kNotADirectory:
    case ErrorCode::kIsADirectory:
    case ErrorCode::kNotEmpty: return 409;
    case ErrorCode::kUnavailable: return 503;
    case ErrorCode::kPermission: return 403;
    case ErrorCode::kUnimplemented: return 501;
    case ErrorCode::kCorruption:
    case ErrorCode::kInternal: return 500;
  }
  return 500;
}

std::string UrlEncode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool unreserved =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
        c == '~' || c == '/';
    if (unreserved) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[static_cast<std::uint8_t>(c) >> 4]);
      out.push_back(kHex[static_cast<std::uint8_t>(c) & 15]);
    }
  }
  return out;
}

Result<std::string> UrlDecode(std::string_view s) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) return Status::InvalidArgument("bad escape");
    const int hi = hex(s[i + 1]);
    const int lo = hex(s[i + 2]);
    if (hi < 0 || lo < 0) return Status::InvalidArgument("bad escape");
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

HttpResponse HttpResponse::FromStatus(const Status& s, std::string ok_body) {
  if (s.ok()) return Text(200, std::move(ok_body));
  return Text(HttpStatusFor(s), s.ToString());
}

std::string SerializeRequest(const HttpRequest& request) {
  std::string out = request.method + " " + request.target + " HTTP/1.1\r\n";
  out += "host: 127.0.0.1\r\n";
  out += "connection: close\r\n";
  out += "content-length: " + std::to_string(request.body.size()) + "\r\n";
  for (const auto& [name, value] : request.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "connection: close\r\n";
  out += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("bind() failed: " +
                               std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  listen_fd_.store(fd);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Closing the listening socket wakes accept().
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  H2MutexLock lock(workers_mu_);
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    H2MutexLock lock(workers_mu_);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
    // Reap finished workers opportunistically to bound the vector.
    if (workers_.size() > 256) {
      for (auto& t : workers_) {
        if (t.joinable()) t.join();
      }
      workers_.clear();
    }
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string start_line, body;
  std::map<std::string, std::string> headers;
  if (ReadHttpMessage(fd, &start_line, &headers, &body)) {
    HttpRequest request;
    const auto parts = Split(start_line, ' ');
    HttpResponse response;
    if (parts.size() < 2) {
      response = HttpResponse::Text(400, "malformed request line");
    } else {
      request.method = std::string(parts[0]);
      request.target = std::string(parts[1]);
      request.headers = std::move(headers);
      request.body = std::move(body);
      response = handler_(request);
    }
    SendAll(fd, SerializeResponse(response));
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

Result<HttpResponse> HttpClient::Send(const HttpRequest& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect() failed");
  }
  if (!SendAll(fd, SerializeRequest(request))) {
    ::close(fd);
    return Status::Unavailable("send() failed");
  }
  std::string start_line, body;
  std::map<std::string, std::string> headers;
  if (!ReadHttpMessage(fd, &start_line, &headers, &body)) {
    ::close(fd);
    return Status::Unavailable("malformed response");
  }
  ::close(fd);
  HttpResponse response;
  const auto parts = Split(start_line, ' ');
  if (parts.size() < 2) return Status::Corruption("bad status line");
  std::uint64_t status = 0;
  if (!ParseUint64(parts[1], &status)) {
    return Status::Corruption("bad status code");
  }
  response.status = static_cast<int>(status);
  response.headers = std::move(headers);
  response.body = std::move(body);
  return response;
}

Result<HttpResponse> HttpClient::Get(std::string target) {
  HttpRequest r;
  r.method = "GET";
  r.target = std::move(target);
  return Send(r);
}

Result<HttpResponse> HttpClient::Put(std::string target, std::string body) {
  HttpRequest r;
  r.method = "PUT";
  r.target = std::move(target);
  r.body = std::move(body);
  return Send(r);
}

Result<HttpResponse> HttpClient::Post(
    std::string target, std::map<std::string, std::string> headers,
    std::string body) {
  HttpRequest r;
  r.method = "POST";
  r.target = std::move(target);
  r.headers = std::move(headers);
  r.body = std::move(body);
  return Send(r);
}

Result<HttpResponse> HttpClient::Delete(std::string target) {
  HttpRequest r;
  r.method = "DELETE";
  r.target = std::move(target);
  return Send(r);
}

}  // namespace h2
