// Deterministic random number generation for workloads and latency jitter.
//
// Seeded generators only: every experiment in bench/ must be reproducible
// run-to-run, so nothing in this codebase uses std::random_device.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace h2 {

/// SplitMix64 -- tiny, excellent seeding generator (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** -- fast general-purpose PRNG (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift method.
  std::uint64_t Below(std::uint64_t bound) {
    assert(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Between(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Zipf(s) sampler over ranks {0, ..., n-1} via precomputed CDF.
/// Used by the workload generator for skewed directory popularity
/// (a few hot directories receive most operations).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t Sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace h2
