// First-class seqlock, extracted from PartitionRing's hand-rolled
// epoch/version publishing.
//
// A seqlock publishes a multi-word value to lock-free readers: the writer
// bumps the sequence to odd, stores the payload, and bumps back to even;
// a reader snapshots the sequence (spinning past odd), reads the payload,
// and retries if the sequence moved.  The payload words themselves must be
// individually atomic (or otherwise race-free to load), because a reader
// may observe a torn intermediate state -- it just never *acts* on one.
//
// Discipline (machine-checked by tools/h2lint's `seqlock` rule):
//   * every ReadBegin() pairs with a ReadRetry() in an enclosing retry
//     loop -- acting on a snapshot without re-checking is a torn read;
//   * writers (WriteBegin/WriteEnd) run under the owning writer mutex,
//     i.e. inside a function annotated REQUIRES(<writer mu>) -- two
//     concurrent writers would both flip odd->even and let a half-merged
//     table escape;
//   * no pointer-chasing inside a read critical section -- a pointer read
//     from a torn snapshot may dangle, and dereferencing it is UB even if
//     the retry loop would have discarded the value.
//
// Usage:
//   // reader
//   for (;;) {
//     const std::uint32_t before = seq_.ReadBegin();
//     ... load payload atomics ...
//     if (!seq_.ReadRetry(before)) break;
//   }
//   // writer, under the writer mutex
//   seq_.WriteBegin();
//   ... store payload atomics (release) ...
//   seq_.WriteEnd();
#pragma once

#include <atomic>
#include <cstdint>

#include "common/thread_annotations.h"

namespace h2 {

class CAPABILITY("seqlock") SeqLock {
 public:
  SeqLock() = default;

  /// Move is single-threaded construction/setup only (the same contract
  /// as the structures a seqlock publishes).
  SeqLock(SeqLock&& other) noexcept
      // h2lint: mo(setup-only move; no concurrent reader exists yet)
      : seq_(other.seq_.load(std::memory_order_relaxed)) {}

  SeqLock(const SeqLock&) = delete;
  SeqLock& operator=(const SeqLock&) = delete;

  // --- reader side ---------------------------------------------------------

  /// Starts a read critical section: returns the current (even) sequence,
  /// spinning while a publish is in flight.  Pair with ReadRetry().
  std::uint32_t ReadBegin() const {
    for (;;) {
      // h2lint: mo(acquire pairs with WriteEnd release; payload loads stay after)
      const std::uint32_t s = seq_.load(std::memory_order_acquire);
      if ((s & 1u) == 0u) return s;
    }
  }

  /// Ends a read critical section: true iff a publish overlapped the
  /// reads and the caller must retry from ReadBegin().
  bool ReadRetry(std::uint32_t before) const {
    // h2lint: mo(acquire orders payload loads before this re-check)
    return seq_.load(std::memory_order_acquire) != before;
  }

  // --- writer side ---------------------------------------------------------
  // Callers must hold the writer mutex; the h2lint `seqlock` rule checks
  // every WriteBegin() call site for a REQUIRES(<mu>) annotation or a
  // scoped lock in the enclosing function.

  /// Marks a publish in flight (sequence becomes odd).
  void WriteBegin() {
    // h2lint: mo(acq_rel: readers spin on odd; payload stores stay below the bump)
    seq_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Completes the publish (sequence returns to even).
  void WriteEnd() {
    // h2lint: mo(release publishes payload stores before the even sequence)
    seq_.fetch_add(1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> seq_{0};
};

}  // namespace h2
