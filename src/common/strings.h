// Small string utilities shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace h2 {

/// Split on a single-character delimiter.  Keeps empty fields.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// Split, dropping empty fields ("/a//b/" -> {"a","b"}).
std::vector<std::string_view> SplitSkipEmpty(std::string_view s, char delim);

/// Join with a delimiter.
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view delim);
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parse a non-negative decimal integer; returns false on any malformation.
bool ParseUint64(std::string_view s, std::uint64_t* out);

/// Format a byte count as "1.5 MiB" etc. (used by bench table output).
std::string HumanBytes(std::uint64_t bytes);

}  // namespace h2
