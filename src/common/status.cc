#include "common/status.h"

namespace h2 {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotADirectory: return "NotADirectory";
    case ErrorCode::kIsADirectory: return "IsADirectory";
    case ErrorCode::kNotEmpty: return "NotEmpty";
    case ErrorCode::kUnavailable: return "Unavailable";
    case ErrorCode::kCorruption: return "Corruption";
    case ErrorCode::kPermission: return "Permission";
    case ErrorCode::kUnimplemented: return "Unimplemented";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace h2
