// Clang Thread Safety Analysis macros (Abseil-style).
//
// These expand to Clang's thread-safety attributes when the compiler
// supports them and to nothing elsewhere, so the locking contract is a
// compiler-checked fact under `-DH2_THREAD_SAFETY=ON` (Clang,
// -Werror=thread-safety) and zero-cost prose under GCC.  See
// docs/STATIC_ANALYSIS.md "Locking contract" for the catalog and the
// rules for annotating a new mutex.
//
// The capability types these attach to live in common/mutex.h (H2Mutex,
// H2SharedMutex) and common/seqlock.h (SeqLock).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define H2_TS_ATTRIBUTE__(x) __has_attribute(x)
#else
#define H2_TS_ATTRIBUTE__(x) 0
#endif

#if H2_TS_ATTRIBUTE__(guarded_by)
#define H2_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define H2_THREAD_ANNOTATION__(x)
#endif

// Declares a type to be a capability ("mutex", "shared_mutex", ...).
#define CAPABILITY(x) H2_THREAD_ANNOTATION__(capability(x))

// Declares an RAII type that acquires a capability in its constructor and
// releases it in its destructor.
#define SCOPED_CAPABILITY H2_THREAD_ANNOTATION__(scoped_lockable)

// Data members: reads/writes require holding the named capability
// (shared suffices for reads, exclusive for writes).
#define GUARDED_BY(x) H2_THREAD_ANNOTATION__(guarded_by(x))

// Pointer members: the *pointee* is guarded; the pointer itself is not.
#define PT_GUARDED_BY(x) H2_THREAD_ANNOTATION__(pt_guarded_by(x))

// Functions: callers must hold the capability exclusively / shared.
#define REQUIRES(...) \
  H2_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  H2_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

// Functions that acquire (and do not release) a capability.
#define ACQUIRE(...) H2_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  H2_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

// Functions that release a held capability.
#define RELEASE(...) H2_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  H2_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  H2_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

// Functions that acquire on success only (returns `true` iff acquired).
#define TRY_ACQUIRE(...) \
  H2_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  H2_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

// Callers must NOT hold the capability (deadlock-by-reentry guard).
#define EXCLUDES(...) H2_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Establishes an acquisition order between capabilities: this one must be
// taken after the named ones.  tools/lock_hierarchy.txt is the
// authoritative cross-TU ordering; this attribute covers same-class pairs.
#define ACQUIRED_AFTER(...) H2_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define ACQUIRED_BEFORE(...) \
  H2_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

// Return value is a reference to the named capability.
#define RETURN_CAPABILITY(x) H2_THREAD_ANNOTATION__(lock_returned(x))

// Assertion that the calling thread already holds the capability (for
// runtime-checked entry points the analysis cannot see through).
#define ASSERT_CAPABILITY(x) H2_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  H2_THREAD_ANNOTATION__(assert_shared_capability(x))

// Opts a function out of the analysis entirely.  Every use-site must carry
// a comment justifying why (hand-over-hand locking the analysis cannot
// model, trusted re-lock helpers, ...).
#define NO_THREAD_SAFETY_ANALYSIS \
  H2_THREAD_ANNOTATION__(no_thread_safety_analysis)
