// Lightweight status / result types used across the H2Cloud codebase.
//
// Filesystem and object-store operations fail for ordinary reasons (missing
// key, existing directory, node down) that are part of the API contract, so
// errors are values, not exceptions.  `Status` carries an error code plus a
// human-readable message; `Result<T>` is a Status-or-value sum type.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace h2 {

enum class ErrorCode {
  kOk = 0,
  kNotFound,        // object / path does not exist
  kAlreadyExists,   // create target already present
  kInvalidArgument, // malformed path, bad parameter
  kNotADirectory,   // directory operation on a file
  kIsADirectory,    // file operation on a directory
  kNotEmpty,        // non-recursive RMDIR of a populated directory
  kUnavailable,     // node down / quorum not reached
  kCorruption,      // failed to parse a stored object
  kPermission,      // account / auth failure
  kUnimplemented,
  kInternal,
};

/// Human-readable name for an error code ("NotFound", ...).
std::string_view ErrorCodeName(ErrorCode code);

/// Value-semantic status: either OK or (code, message).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m) {
    return {ErrorCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m) {
    return {ErrorCode::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m) {
    return {ErrorCode::kInvalidArgument, std::move(m)};
  }
  static Status NotADirectory(std::string m) {
    return {ErrorCode::kNotADirectory, std::move(m)};
  }
  static Status IsADirectory(std::string m) {
    return {ErrorCode::kIsADirectory, std::move(m)};
  }
  static Status NotEmpty(std::string m) {
    return {ErrorCode::kNotEmpty, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {ErrorCode::kUnavailable, std::move(m)};
  }
  static Status Corruption(std::string m) {
    return {ErrorCode::kCorruption, std::move(m)};
  }
  static Status Permission(std::string m) {
    return {ErrorCode::kPermission, std::move(m)};
  }
  static Status Unimplemented(std::string m) {
    return {ErrorCode::kUnimplemented, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {ErrorCode::kInternal, std::move(m)};
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "NotFound: no such object" or "OK".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Status-or-value.  `Result<T>` is OK iff it holds a value.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}                 // NOLINT
  Result(Status status) : rep_(std::move(status)) {           // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }
  ErrorCode code() const {
    return ok() ? ErrorCode::kOk : std::get<Status>(rep_).code();
  }

  /// Value if OK, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<Status, T> rep_;
};

// Propagate-on-error helpers, in the style of absl's RETURN_IF_ERROR.
#define H2_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::h2::Status h2_status_ = (expr);             \
    if (!h2_status_.ok()) return h2_status_;      \
  } while (0)

#define H2_ASSIGN_OR_RETURN(lhs, expr)            \
  auto H2_CONCAT_(h2_result_, __LINE__) = (expr); \
  if (!H2_CONCAT_(h2_result_, __LINE__).ok())     \
    return H2_CONCAT_(h2_result_, __LINE__).status(); \
  lhs = std::move(H2_CONCAT_(h2_result_, __LINE__)).value()

#define H2_CONCAT_(a, b) H2_CONCAT_IMPL_(a, b)
#define H2_CONCAT_IMPL_(a, b) a##b

}  // namespace h2
