// Annotated mutex wrappers: the only mutex types allowed in src/.
//
// std::mutex / std::shared_mutex (and std::lock_guard et al.) carry no
// Clang thread-safety attributes in libstdc++, and diagnostics inside
// system headers are suppressed anyway -- so locking through them is
// invisible to the analysis.  H2Mutex / H2SharedMutex are zero-overhead
// wrappers declared CAPABILITY, and the scoped guards below are declared
// SCOPED_CAPABILITY, which makes every acquisition a compiler-checked
// fact under -DH2_THREAD_SAFETY=ON (see common/thread_annotations.h).
//
// scripts/check_build_hygiene.sh enforces that no std::mutex /
// std::shared_mutex member is declared in src/ outside this header.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace h2 {

/// Exclusive mutex (wraps std::mutex).
class CAPABILITY("mutex") H2Mutex {
 public:
  H2Mutex() = default;
  H2Mutex(const H2Mutex&) = delete;
  H2Mutex& operator=(const H2Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Escape hatch for std::condition_variable interop only.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// Reader/writer mutex (wraps std::shared_mutex).
class CAPABILITY("shared_mutex") H2SharedMutex {
 public:
  H2SharedMutex() = default;
  H2SharedMutex(const H2SharedMutex&) = delete;
  H2SharedMutex& operator=(const H2SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on an H2Mutex (std::lock_guard replacement).
class SCOPED_CAPABILITY H2MutexLock {
 public:
  explicit H2MutexLock(H2Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~H2MutexLock() RELEASE() { mu_.Unlock(); }

  H2MutexLock(const H2MutexLock&) = delete;
  H2MutexLock& operator=(const H2MutexLock&) = delete;

 private:
  H2Mutex& mu_;
};

/// RAII exclusive lock that can be dropped and re-taken mid-scope --
/// the hand-over-hand shape LoadLocked / MergeNamespaceLocked use to
/// release the lock around cloud I/O.  Destructor unlocks iff held.
class SCOPED_CAPABILITY H2ReleasableMutexLock {
 public:
  explicit H2ReleasableMutexLock(H2Mutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
    held_ = true;
  }
  ~H2ReleasableMutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }
  bool held() const { return held_; }

  H2ReleasableMutexLock(const H2ReleasableMutexLock&) = delete;
  H2ReleasableMutexLock& operator=(const H2ReleasableMutexLock&) = delete;

 private:
  H2Mutex& mu_;
  bool held_ = false;
};

/// RAII exclusive lock on an H2SharedMutex (writer side).
class SCOPED_CAPABILITY H2WriterMutexLock {
 public:
  explicit H2WriterMutexLock(H2SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~H2WriterMutexLock() RELEASE() { mu_.Unlock(); }

  H2WriterMutexLock(const H2WriterMutexLock&) = delete;
  H2WriterMutexLock& operator=(const H2WriterMutexLock&) = delete;

 private:
  H2SharedMutex& mu_;
};

/// RAII shared lock on an H2SharedMutex (reader side).
class SCOPED_CAPABILITY H2ReaderMutexLock {
 public:
  explicit H2ReaderMutexLock(H2SharedMutex& mu) ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  ~H2ReaderMutexLock() RELEASE() { mu_.ReaderUnlock(); }

  H2ReaderMutexLock(const H2ReaderMutexLock&) = delete;
  H2ReaderMutexLock& operator=(const H2ReaderMutexLock&) = delete;

 private:
  H2SharedMutex& mu_;
};

}  // namespace h2
