#include "common/strings.h"

#include <array>
#include <cstdio>

namespace h2 {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitSkipEmpty(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  for (auto part : Split(s, delim)) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

namespace {
template <typename Parts>
std::string JoinImpl(const Parts& parts, std::string_view delim) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out += delim;
    out += p;
    first = false;
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view delim) {
  return JoinImpl(parts, delim);
}
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  return JoinImpl(parts, delim);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseUint64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (~0ULL - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

std::string HumanBytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace h2
