#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace h2 {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace h2
