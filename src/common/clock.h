// Virtual time for deterministic latency simulation.
//
// Benchmarks in this repository reproduce the paper's "operation time"
// metric (ICPP'18 §5.2): how long the storage system needs to process a
// filesystem operation, excluding client RTT.  Instead of sleeping, the
// object cloud *charges* per-primitive latencies (see cluster/latency.h) to
// an OpMeter; the SimClock provides a monotonically advancing virtual
// timestamp used for NameRing tuple timestamps, UUID generation and gossip
// ordering.  This keeps runs fast and bit-for-bit reproducible.
#pragma once

#include <atomic>
#include <cstdint>

namespace h2 {

/// Virtual duration in nanoseconds.  A plain integral type (not
/// std::chrono) so it can be accumulated and serialized trivially.
using VirtualNanos = std::int64_t;

constexpr VirtualNanos kMicrosecond = 1'000;
constexpr VirtualNanos kMillisecond = 1'000'000;
constexpr VirtualNanos kSecond = 1'000'000'000;

constexpr double ToMillis(VirtualNanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kMillisecond);
}
constexpr VirtualNanos FromMillis(double ms) {
  return static_cast<VirtualNanos>(ms * static_cast<double>(kMillisecond));
}

/// Monotonic virtual clock.  `Tick()` returns a strictly increasing
/// timestamp, so two events observed by the same clock never collide --
/// the property the NameRing merge algorithm's last-writer-wins rule and
/// the gossip loop-back suppression both rely on.
///
/// Thread-safe: timestamps are handed out from a single atomic counter.
class SimClock {
 public:
  /// Starts at `epoch_ns` (defaults to the paper's example timestamp
  /// 1469346604539 ms so namespace UUIDs look like the ones in §3.1).
  explicit SimClock(VirtualNanos epoch_ns = 1469346604539LL * kMillisecond)
      : now_(epoch_ns) {}

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  /// Current virtual time without advancing.
  // h2lint: mo(monotonic counter; readers only need some recent value)
  VirtualNanos Now() const { return now_.load(std::memory_order_relaxed); }

  /// Strictly increasing timestamp (advances by 1ns per call).
  VirtualNanos Tick() {
    // h2lint: mo(fetch_add is atomic either way; timestamps order data, not memory)
    return now_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Advance virtual time (e.g. between benchmark phases).
  void Advance(VirtualNanos delta) {
    // h2lint: mo(counter bump; no payload is published via the clock)
    now_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Milliseconds since the UNIX epoch, as used in namespace UUIDs.
  std::int64_t NowUnixMillis() const { return Now() / kMillisecond; }

 private:
  std::atomic<VirtualNanos> now_;
};

}  // namespace h2
