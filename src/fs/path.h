// Path handling for the POSIX-like namespace all filesystems expose.
//
// Paths are absolute, '/'-separated, normalized ("/home/ubuntu/file1").
// Component names may contain any byte except '/' and NUL; the Formatter's
// escaping keeps them safe inside stored objects.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace h2 {

/// True for a valid single component ("ubuntu", not "a/b", ".", "..", "").
bool IsValidName(std::string_view name);

/// Normalizes to "/a/b/c" form: leading slash, no duplicate or trailing
/// slashes.  Fails on relative paths, empty input, "." / ".." components.
Result<std::string> NormalizePath(std::string_view path);

/// Components of a normalized path ("/a/b" -> {"a","b"}; "/" -> {}).
std::vector<std::string_view> PathComponents(std::string_view normalized);

/// Parent of a normalized path ("/a/b" -> "/a"; "/a" -> "/").
/// The root has no parent: ParentPath("/") == "/".
std::string ParentPath(std::string_view normalized);

/// Last component ("/a/b" -> "b"); empty for "/".
std::string_view BaseName(std::string_view normalized);

/// Joins a normalized directory path and a child name.
std::string JoinPath(std::string_view dir, std::string_view name);

/// Directory depth d as the paper defines it: number of components
/// ("/home/ubuntu/file1" has d = 3).
std::size_t PathDepth(std::string_view normalized);

/// True if `path` equals `ancestor` or lies beneath it.
bool IsWithin(std::string_view path, std::string_view ancestor);

}  // namespace h2
