#include "fs/path.h"

#include "common/strings.h"

namespace h2 {

bool IsValidName(std::string_view name) {
  if (name.empty() || name == "." || name == "..") return false;
  for (char c : name) {
    if (c == '/' || c == '\0') return false;
  }
  return true;
}

Result<std::string> NormalizePath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " +
                                   std::string(path));
  }
  std::string out;
  for (auto part : SplitSkipEmpty(path, '/')) {
    if (!IsValidName(part)) {
      return Status::InvalidArgument("bad path component: " +
                                     std::string(part));
    }
    out.push_back('/');
    out += part;
  }
  if (out.empty()) out = "/";
  return out;
}

std::vector<std::string_view> PathComponents(std::string_view normalized) {
  return SplitSkipEmpty(normalized, '/');
}

std::string ParentPath(std::string_view normalized) {
  if (normalized == "/") return "/";
  const std::size_t slash = normalized.rfind('/');
  if (slash == 0) return "/";
  return std::string(normalized.substr(0, slash));
}

std::string_view BaseName(std::string_view normalized) {
  if (normalized == "/") return {};
  const std::size_t slash = normalized.rfind('/');
  return normalized.substr(slash + 1);
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  std::string out(dir);
  if (out.empty() || out.back() != '/') out.push_back('/');
  out += name;
  return out;
}

std::size_t PathDepth(std::string_view normalized) {
  if (normalized == "/") return 0;
  std::size_t depth = 0;
  for (char c : normalized) {
    if (c == '/') ++depth;
  }
  return depth;
}

bool IsWithin(std::string_view path, std::string_view ancestor) {
  if (ancestor == "/") return true;
  if (!StartsWith(path, ancestor)) return false;
  return path.size() == ancestor.size() || path[ancestor.size()] == '/';
}

}  // namespace h2
