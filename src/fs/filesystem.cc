#include "fs/filesystem.h"

#include "fs/path.h"

namespace h2 {

Status FileSystem::Rename(std::string_view path, std::string_view new_name) {
  if (!IsValidName(new_name)) {
    BeginOp();
    return Status::InvalidArgument("bad name: " + std::string(new_name));
  }
  H2_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  return Move(normalized, JoinPath(ParentPath(normalized), new_name));
}

}  // namespace h2
