#include "fs/filesystem.h"

#include "fs/path.h"

namespace h2 {

Status FileSystem::Rename(std::string_view path, std::string_view new_name) {
  if (!IsValidName(new_name)) {
    BeginOp();
    return Status::InvalidArgument("bad name: " + std::string(new_name));
  }
  H2_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  return Move(normalized, JoinPath(ParentPath(normalized), new_name));
}

Result<VirtualNanos> FileSystem::DirVersion(std::string_view path) {
  // Unversioned systems live at a single version 0 for every path; the
  // follow-up ListAt/StatAt surfaces any bad-operand error.
  (void)path;
  return VirtualNanos{0};
}

Result<std::vector<DirEntry>> FileSystem::ListAt(std::string_view path,
                                                 VirtualNanos version,
                                                 ListDetail detail) {
  (void)version;
  return List(path, detail);
}

Result<FileInfo> FileSystem::StatAt(std::string_view path,
                                    VirtualNanos version) {
  (void)version;
  return Stat(path);
}

Status FileSystem::SnapshotClone(std::string_view from, std::string_view to) {
  return Copy(from, to);
}

}  // namespace h2
