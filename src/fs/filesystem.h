// The POSIX-like filesystem interface every system in this repository
// implements: the H2 middleware and all seven Table-1 baselines.
//
// The operation set is the paper's (§1): READ, WRITE, MKDIR, RMDIR, MOVE,
// RENAME, LIST, COPY, plus Stat -- "file access" in the evaluation, which
// measures the *lookup* time of a file while excluding content transfer
// (§5.2).  Each call meters its own cost; `last_op()` returns the
// simulated operation time and primitive counts of the most recent call,
// which is exactly the series the figures plot.
//
// Implementations are thread-compatible: one client drives one FileSystem
// instance at a time; concurrent multi-middleware behaviour is exercised
// through separate H2Middleware instances over a shared cloud.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/op_meter.h"
#include "common/clock.h"
#include "common/status.h"

namespace h2 {

/// File content plus its declared logical size (large synthetic files
/// carry a small sample payload; see cluster/object.h).
struct FileBlob {
  std::string data;
  std::uint64_t logical_size = 0;

  static FileBlob FromString(std::string s) {
    FileBlob b;
    b.logical_size = s.size();
    b.data = std::move(s);
    return b;
  }
  static FileBlob Synthetic(std::string sample, std::uint64_t size) {
    return FileBlob{std::move(sample), size};
  }
};

enum class EntryKind { kFile, kDirectory };

struct DirEntry {
  std::string name;
  EntryKind kind = EntryKind::kFile;
  // Populated only by detailed LISTs.
  std::uint64_t size = 0;
  VirtualNanos modified = 0;
};

struct FileInfo {
  EntryKind kind = EntryKind::kFile;
  std::uint64_t size = 0;
  VirtualNanos created = 0;
  VirtualNanos modified = 0;
};

/// Names-only LIST is the O(1) NameRing read; detailed LIST additionally
/// fetches each child's metadata -- O(m) (§2, "Comparison with H2").
enum class ListDetail { kNamesOnly, kDetailed };

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Short system name for bench tables ("H2Cloud", "Swift", ...).
  virtual std::string_view system_name() const = 0;

  // --- file content -------------------------------------------------------
  virtual Status WriteFile(std::string_view path, FileBlob blob) = 0;
  virtual Result<FileBlob> ReadFile(std::string_view path) = 0;
  /// "File access" in the paper: locate the file and return its metadata
  /// without transferring content.
  virtual Result<FileInfo> Stat(std::string_view path) = 0;
  virtual Status RemoveFile(std::string_view path) = 0;

  // --- directories ----------------------------------------------------------
  virtual Status Mkdir(std::string_view path) = 0;
  /// Removes a directory and everything beneath it (the paper's RMDIR
  /// benchmarks directories holding n files).
  virtual Status Rmdir(std::string_view path) = 0;
  /// Moves a file or directory subtree to a new full path.
  virtual Status Move(std::string_view from, std::string_view to) = 0;
  /// RENAME "is in fact a special case of MOVE" (§5.3): same parent,
  /// new name.
  virtual Status Rename(std::string_view path, std::string_view new_name);
  virtual Result<std::vector<DirEntry>> List(std::string_view path,
                                             ListDetail detail) = 0;
  /// Copies a file or directory subtree to a new full path.
  virtual Status Copy(std::string_view from, std::string_view to) = 0;

  // --- versioned reads & snapshots ------------------------------------------
  // Systems without patch-history retention serve these as plain reads
  // and materialized copies, so one trace replays against every system:
  // the default DirVersion token is 0 and the default ListAt/StatAt
  // ignore the version, while the default SnapshotClone degenerates to
  // Copy -- exactly the O(n) contrast the snapshot benches measure
  // against H2's O(1) clone.
  /// The directory's current version -- the time-travel token accepted by
  /// ListAt/StatAt.
  virtual Result<VirtualNanos> DirVersion(std::string_view path);
  /// LIST as the directory stood at `version` (InvalidArgument below the
  /// implementation's retention floor).
  virtual Result<std::vector<DirEntry>> ListAt(std::string_view path,
                                               VirtualNanos version,
                                               ListDetail detail);
  /// Stat as of `version`.
  virtual Result<FileInfo> StatAt(std::string_view path,
                                  VirtualNanos version);
  /// Snapshot of the `from` subtree at `to`, frozen at `from`'s current
  /// version.
  virtual Status SnapshotClone(std::string_view from, std::string_view to);

  // --- metering -------------------------------------------------------------
  /// Cost of the most recent operation (the figures' y-axis).
  const OpCost& last_op() const { return meter_.cost(); }

  /// Binds a shard execution context (virtual clock domain + jitter RNG
  /// stream) to this session's meter; see OpMeter::SetClockDomain.  The
  /// sharded engine calls this once per shard session before replay; both
  /// pointers must outlive the session.  Null/null restores the global
  /// context.
  void BindExecutionContext(SimClock* clock, Rng* jitter) {
    meter_.SetClockDomain(clock);
    meter_.SetJitterStream(jitter);
  }

 protected:
  /// Implementations call this first in every public operation.
  OpMeter& BeginOp() {
    meter_.Reset();
    return meter_;
  }

  OpMeter meter_;
};

}  // namespace h2
