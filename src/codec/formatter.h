// The Formatter (ICPP'18 §4.4): converts every data type H2Cloud stores --
// directory records, NameRings, NameRing patches, account records -- into
// ASCII string-style objects, and parses them back.
//
// Two building blocks:
//   * field escaping: '%', '|' and '\n' are percent-encoded so arbitrary
//     file names survive the round trip;
//   * a line-oriented record codec: each record is `key=value\n` (values
//     escaped), giving objects that are human-inspectable in a debugger or
//     a raw object GET -- mirroring how Swift metadata is plain text.
//
// NameRing tuple lists use the same escaping with '|'-separated fields and
// are serialized in alphabetical child order, as §4.4 requires.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace h2 {

/// Percent-encode '%', '|', '=' and '\n'.
std::string EscapeField(std::string_view s);

/// Inverse of EscapeField.  Fails on truncated or invalid escapes.
Result<std::string> UnescapeField(std::string_view s);

/// Splits a '|'-separated tuple line into unescaped fields.
Result<std::vector<std::string>> ParseTupleLine(std::string_view line);

/// Joins fields into a '|'-separated tuple line, escaping each.
std::string MakeTupleLine(const std::vector<std::string_view>& fields);

/// Ordered key=value record codec (deterministic output: keys sorted).
class KvRecord {
 public:
  void Set(std::string_view key, std::string_view value);
  void SetInt(std::string_view key, std::int64_t value);
  void SetUint(std::string_view key, std::uint64_t value);

  bool Has(std::string_view key) const;
  /// Empty string when absent; use Has() to distinguish.
  const std::string& Get(std::string_view key) const;
  Result<std::int64_t> GetInt(std::string_view key) const;
  Result<std::uint64_t> GetUint(std::string_view key) const;

  std::string Serialize() const;
  static Result<KvRecord> Parse(std::string_view data);

  std::size_t size() const { return fields_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> fields_;
};

}  // namespace h2
