#include "codec/formatter.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace h2 {
namespace {

constexpr char kHex[] = "0123456789ABCDEF";

bool NeedsEscape(char c) {
  // '=' is escaped so KvRecord's key=value split is unambiguous even when
  // keys or values contain it.
  return c == '%' || c == '|' || c == '\n' || c == '=';
}

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string EscapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (NeedsEscape(c)) {
      out.push_back('%');
      out.push_back(kHex[static_cast<std::uint8_t>(c) >> 4]);
      out.push_back(kHex[static_cast<std::uint8_t>(c) & 15]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) {
      return Status::Corruption("truncated escape in field");
    }
    const int hi = HexVal(s[i + 1]);
    const int lo = HexVal(s[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::Corruption("invalid escape in field");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

Result<std::vector<std::string>> ParseTupleLine(std::string_view line) {
  std::vector<std::string> out;
  for (auto field : Split(line, '|')) {
    H2_ASSIGN_OR_RETURN(std::string unescaped, UnescapeField(field));
    out.push_back(std::move(unescaped));
  }
  return out;
}

std::string MakeTupleLine(const std::vector<std::string_view>& fields) {
  std::string out;
  bool first = true;
  for (auto f : fields) {
    if (!first) out.push_back('|');
    out += EscapeField(f);
    first = false;
  }
  return out;
}

void KvRecord::Set(std::string_view key, std::string_view value) {
  fields_[std::string(key)] = std::string(value);
}

void KvRecord::SetInt(std::string_view key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  Set(key, buf);
}

void KvRecord::SetUint(std::string_view key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  Set(key, buf);
}

bool KvRecord::Has(std::string_view key) const {
  return fields_.contains(key);
}

const std::string& KvRecord::Get(std::string_view key) const {
  static const std::string kEmpty;
  auto it = fields_.find(key);
  return it == fields_.end() ? kEmpty : it->second;
}

Result<std::int64_t> KvRecord::GetInt(std::string_view key) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) {
    return Status::Corruption("missing field: " + std::string(key));
  }
  std::string_view v = it->second;
  bool negative = false;
  if (!v.empty() && v[0] == '-') {
    negative = true;
    v.remove_prefix(1);
  }
  std::uint64_t magnitude = 0;
  if (!ParseUint64(v, &magnitude)) {
    return Status::Corruption("bad integer field: " + std::string(key));
  }
  const std::int64_t value = static_cast<std::int64_t>(magnitude);
  return negative ? -value : value;
}

Result<std::uint64_t> KvRecord::GetUint(std::string_view key) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) {
    return Status::Corruption("missing field: " + std::string(key));
  }
  std::uint64_t value = 0;
  if (!ParseUint64(it->second, &value)) {
    return Status::Corruption("bad integer field: " + std::string(key));
  }
  return value;
}

std::string KvRecord::Serialize() const {
  std::string out;
  for (const auto& [key, value] : fields_) {
    out += EscapeField(key);
    out.push_back('=');
    out += EscapeField(value);
    out.push_back('\n');
  }
  return out;
}

Result<KvRecord> KvRecord::Parse(std::string_view data) {
  KvRecord record;
  for (auto line : Split(data, '\n')) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::Corruption("record line without '='");
    }
    H2_ASSIGN_OR_RETURN(std::string key, UnescapeField(line.substr(0, eq)));
    H2_ASSIGN_OR_RETURN(std::string value,
                        UnescapeField(line.substr(eq + 1)));
    record.fields_[std::move(key)] = std::move(value);
  }
  return record;
}

}  // namespace h2
