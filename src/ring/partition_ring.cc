#include "ring/partition_ring.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

namespace h2 {

PartitionRing::PartitionRing(int part_power, int replica_count)
    : part_power_(part_power), replica_count_(replica_count),
      slot_count_(static_cast<std::size_t>(replica_count) *
                  (std::size_t{1} << part_power)),
      assignment_(new std::atomic<DeviceId>[slot_count_]) {
  assert(part_power >= 1 && part_power <= 30);
  assert(replica_count >= 1);
  for (std::size_t i = 0; i < slot_count_; ++i) {
    // h2lint: mo(constructor; the table is not yet published to readers)
    assignment_[i].store(kUnassigned, std::memory_order_relaxed);
  }
}

const RingDevice* PartitionRing::FindDevice(DeviceId id) const {
  for (const auto& d : devices_) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

RingDevice* PartitionRing::FindDevice(DeviceId id) {
  return const_cast<RingDevice*>(
      static_cast<const PartitionRing*>(this)->FindDevice(id));
}

Status PartitionRing::AddDevice(RingDevice device) {
  H2MutexLock lock(admin_mu_);
  if (device.weight <= 0) {
    return Status::InvalidArgument("device weight must be positive");
  }
  if (FindDevice(device.id) != nullptr) {
    return Status::AlreadyExists("device id already registered");
  }
  device.active = true;
  devices_.push_back(std::move(device));
  balanced_ = false;
  return Status::Ok();
}

Status PartitionRing::RemoveDevice(DeviceId id) {
  H2MutexLock lock(admin_mu_);
  RingDevice* d = FindDevice(id);
  if (d == nullptr || !d->active) {
    return Status::NotFound("no such active device");
  }
  d->active = false;
  balanced_ = false;
  return Status::Ok();
}

Status PartitionRing::SetWeight(DeviceId id, double weight) {
  H2MutexLock lock(admin_mu_);
  if (weight <= 0) {
    return Status::InvalidArgument("device weight must be positive");
  }
  RingDevice* d = FindDevice(id);
  if (d == nullptr || !d->active) {
    return Status::NotFound("no such active device");
  }
  d->weight = weight;
  balanced_ = false;
  return Status::Ok();
}

Status PartitionRing::ReplaceDevice(DeviceId old_id, RingDevice replacement) {
  H2MutexLock lock(admin_mu_);
  if (replacement.weight <= 0) {
    return Status::InvalidArgument("device weight must be positive");
  }
  RingDevice* old_dev = FindDevice(old_id);
  if (old_dev == nullptr || !old_dev->active) {
    return Status::NotFound("no such active device");
  }
  if (replacement.id == old_id) {
    return Status::InvalidArgument("replacement must use a fresh device id");
  }
  if (FindDevice(replacement.id) != nullptr) {
    return Status::AlreadyExists("device id already registered");
  }
  old_dev->active = false;
  replacement.active = true;
  const DeviceId new_id = replacement.id;
  devices_.push_back(std::move(replacement));

  // Relabel old_id -> new_id in a private copy and publish wholesale, same
  // SeqLock discipline as Rebalance: readers never see a half-relabeled
  // table mixing the two identities.
  std::vector<DeviceId> next(slot_count_);
  for (std::size_t i = 0; i < slot_count_; ++i) {
    // h2lint: mo(writer-side read under admin_mu_; no publish in flight)
    const DeviceId dev = assignment_[i].load(std::memory_order_relaxed);
    next[i] = dev == old_id ? new_id : dev;
  }
  assign_seq_.WriteBegin();
  for (std::size_t i = 0; i < slot_count_; ++i) {
    // h2lint: mo(release: slot visible before WriteEnd flips seq even)
    assignment_[i].store(next[i], std::memory_order_release);
  }
  assign_seq_.WriteEnd();
  // h2lint: mo(acq_rel epoch bump orders after the table publish)
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

std::size_t PartitionRing::active_device_count() const {
  H2MutexLock lock(admin_mu_);
  return static_cast<std::size_t>(
      std::count_if(devices_.begin(), devices_.end(),
                    [](const RingDevice& d) { return d.active; }));
}

Status PartitionRing::Rebalance() {
  H2MutexLock lock(admin_mu_);
  return RebalanceLocked();
}

Status PartitionRing::RebalanceLocked() REQUIRES(admin_mu_) {
  std::vector<const RingDevice*> active;
  for (const auto& d : devices_) {
    if (d.active) active.push_back(&d);
  }
  if (active.empty()) {
    return Status::InvalidArgument("cannot rebalance an empty ring");
  }

  const std::uint32_t parts = partition_count();
  const double total_weight = std::accumulate(
      active.begin(), active.end(), 0.0,
      [](double acc, const RingDevice* d) { return acc + d->weight; });

  // Per-replica-row quota for each device, by the largest remainder method:
  // every row assigns exactly `parts` slots, and each device's share across
  // the whole ring is proportional to its weight.
  // Ordered maps by DeviceId: these feed quota checks and the fill pool, and
  // an ordered container keeps any future iteration over them deterministic.
  std::map<DeviceId, std::uint32_t> quota;
  for (int row = 0; row < replica_count_; ++row) {
    std::vector<std::pair<double, DeviceId>> remainders;
    std::uint32_t assigned = 0;
    for (const RingDevice* d : active) {
      const double exact = parts * d->weight / total_weight;
      const auto whole = static_cast<std::uint32_t>(exact);
      quota[d->id] += whole;
      assigned += whole;
      remainders.emplace_back(exact - whole, d->id);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;  // deterministic tie-break
              });
    // Rotate the starting point by row so remainder ties spread across
    // devices rather than piling onto one -- otherwise a device could be
    // granted more slots than there are partitions, forcing replica
    // collisions.
    const std::size_t offset =
        static_cast<std::size_t>(row) % remainders.size();
    for (std::uint32_t i = 0; assigned < parts; ++assigned, ++i) {
      quota[remainders[(offset + i) % remainders.size()].second] += 1;
    }
  }

  // The algorithm below runs on a private copy of the table and publishes
  // it wholesale at the end: readers race Rebalance lock-free through the
  // seqlock, so the in-progress mutation must never be visible.
  std::vector<DeviceId> next(slot_count_);
  for (std::size_t i = 0; i < slot_count_; ++i) {
    // h2lint: mo(writer-side read under admin_mu_; no publish in flight)
    next[i] = assignment_[i].load(std::memory_order_relaxed);
  }

  // Pass 1: keep current assignments that are still valid -- the device is
  // active, has quota left, and does not collide with an earlier replica
  // row of the same partition.  This is what bounds data movement.
  std::map<DeviceId, std::uint32_t> used;
  auto slot = [&](int row, std::uint32_t part) -> DeviceId& {
    return next[static_cast<std::size_t>(row) * parts + part];
  };
  // Zone-aware placement, like Swift's "as unique as possible" rule:
  // replicas must land on distinct devices, and -- when there are enough
  // zones -- on distinct failure domains, so a whole rack/DC outage never
  // takes out every copy.
  std::size_t zone_count = ActiveZoneCountLocked();
  // Snapshot zones up front: lambdas get their own analysis context, so
  // they read this plain map instead of the admin_mu_-guarded table.
  std::map<DeviceId, std::uint32_t> zone_map;
  for (const auto& d : devices_) zone_map[d.id] = d.zone;
  auto zone_of = [&zone_map](DeviceId dev) -> std::uint32_t {
    const auto it = zone_map.find(dev);
    return it == zone_map.end() ? 0 : it->second;
  };
  auto collides = [&](int row, std::uint32_t part, DeviceId dev) {
    if (active.size() < static_cast<std::size_t>(replica_count_)) {
      return false;  // fewer devices than replicas: collisions unavoidable
    }
    const bool enforce_zones =
        zone_count >= static_cast<std::size_t>(replica_count_);
    // Check every other replica row: after an incremental rebalance, kept
    // assignments exist above AND below the row being (re)filled.
    for (int r = 0; r < replica_count_; ++r) {
      if (r == row) continue;
      const DeviceId other = slot(r, part);
      if (other == dev) return true;
      if (enforce_zones && other != kUnassigned &&
          zone_of(other) == zone_of(dev)) {
        return true;
      }
    }
    return false;
  };

  for (int row = 0; row < replica_count_; ++row) {
    for (std::uint32_t part = 0; part < parts; ++part) {
      const DeviceId dev = slot(row, part);
      if (dev == kUnassigned) continue;
      const RingDevice* d = FindDevice(dev);
      if (d == nullptr || !d->active || used[dev] >= quota[dev] ||
          collides(row, part, dev)) {
        slot(row, part) = kUnassigned;
      } else {
        used[dev] += 1;
      }
    }
  }

  // Pass 2: fill the freed slots from devices with remaining quota,
  // preferring a placement that avoids replica collisions.  When only
  // colliding pool entries remain, repair by swapping with an already
  // assigned partition in the same row whose device fits here and for
  // which our candidate fits there.
  std::vector<DeviceId> pool;
  for (const RingDevice* d : active) {
    for (std::uint32_t i = used[d->id]; i < quota[d->id]; ++i) {
      pool.push_back(d->id);
    }
  }
  std::size_t pool_next = 0;
  for (int row = 0; row < replica_count_; ++row) {
    for (std::uint32_t part = 0; part < parts; ++part) {
      if (slot(row, part) != kUnassigned) continue;
      assert(pool_next < pool.size());
      std::size_t pick = pool.size();
      for (std::size_t probe = pool_next; probe < pool.size(); ++probe) {
        if (!collides(row, part, pool[probe])) {
          pick = probe;
          break;
        }
      }
      if (pick != pool.size()) {
        std::swap(pool[pool_next], pool[pick]);
        slot(row, part) = pool[pool_next++];
        continue;
      }
      // Every remaining pool device collides at `part`.  Take the head
      // entry and look for a same-row partition to trade with.
      const DeviceId candidate = pool[pool_next++];
      bool swapped = false;
      for (std::uint32_t other = 0; other < parts && !swapped; ++other) {
        const DeviceId incumbent = slot(row, other);
        if (other == part || incumbent == kUnassigned ||
            incumbent == candidate) {
          continue;
        }
        if (!collides(row, part, incumbent) &&
            !collides(row, other, candidate)) {
          slot(row, part) = incumbent;
          slot(row, other) = candidate;
          swapped = true;
        }
      }
      if (!swapped) {
        slot(row, part) = candidate;  // infeasible (heavily skewed weights)
      }
    }
  }
  assert(pool_next == pool.size());

  // SeqLock publish: bump to odd, store every slot, bump back to even.
  // A reader that overlaps the stores sees an odd or changed sequence and
  // retries, so no caller can ever act on a half-published ring.
  assign_seq_.WriteBegin();
  for (std::size_t i = 0; i < slot_count_; ++i) {
    // h2lint: mo(release: slot visible before WriteEnd flips seq even)
    assignment_[i].store(next[i], std::memory_order_release);
  }
  assign_seq_.WriteEnd();
  // h2lint: mo(release: balanced gate opens only after the table publish)
  balanced_.store(true, std::memory_order_release);
  // h2lint: mo(acq_rel epoch bump orders after the table publish)
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

std::size_t PartitionRing::ActiveZoneCountLocked() const {
  std::vector<std::uint32_t> zones;
  for (const auto& d : devices_) {
    if (d.active) zones.push_back(d.zone);
  }
  std::sort(zones.begin(), zones.end());
  zones.erase(std::unique(zones.begin(), zones.end()), zones.end());
  return zones.size();
}

std::size_t PartitionRing::active_zone_count() const {
  H2MutexLock lock(admin_mu_);
  return ActiveZoneCountLocked();
}

std::vector<DeviceId> PartitionRing::ReplicasOfPartition(
    std::uint32_t partition) const {
  std::vector<DeviceId> out;
  // h2lint: mo(acquire pairs with the release store after the publish)
  if (!balanced_.load(std::memory_order_acquire)) return out;
  out.reserve(static_cast<std::size_t>(replica_count_));
  const std::uint32_t parts = partition_count();
  for (;;) {
    const std::uint32_t before = assign_seq_.ReadBegin();
    out.clear();
    for (int row = 0; row < replica_count_; ++row) {
      // h2lint: mo(acquire slot load inside the seqlock read section)
      out.push_back(assignment_[static_cast<std::size_t>(row) * parts +
                                partition]
                        .load(std::memory_order_acquire));
    }
    if (!assign_seq_.ReadRetry(before)) return out;
  }
}

std::uint32_t PartitionRing::VnodeCount(DeviceId id) const {
  for (;;) {
    const std::uint32_t before = assign_seq_.ReadBegin();
    std::uint32_t count = 0;
    for (std::size_t i = 0; i < slot_count_; ++i) {
      // h2lint: mo(acquire slot load inside the seqlock read section)
      if (assignment_[i].load(std::memory_order_acquire) == id) ++count;
    }
    if (!assign_seq_.ReadRetry(before)) return count;
  }
}

std::vector<std::uint32_t> PartitionRing::SlotCounts() const {
  DeviceId max_id = 0;
  {
    H2MutexLock lock(admin_mu_);
    for (const auto& d : devices_) max_id = std::max(max_id, d.id);
  }
  for (;;) {
    const std::uint32_t before = assign_seq_.ReadBegin();
    std::vector<std::uint32_t> counts(max_id + 1, 0);
    for (std::size_t i = 0; i < slot_count_; ++i) {
      // h2lint: mo(acquire slot load inside the seqlock read section)
      const DeviceId dev = assignment_[i].load(std::memory_order_acquire);
      if (dev != kUnassigned) counts[dev] += 1;
    }
    if (!assign_seq_.ReadRetry(before)) return counts;
  }
}

std::vector<RingDevice> PartitionRing::devices() const {
  H2MutexLock lock(admin_mu_);
  return devices_;
}

}  // namespace h2
