// Swift-style partitioned consistent-hashing ring.
//
// OpenStack Swift divides the hash space into 2^part_power partitions and
// assigns each partition `replica_count` devices; an object's key is MD5
// hashed and the top bits select its partition (see "Building a Consistent
// Hashing Ring", referenced by the paper as [5]).  Both H2Cloud and the
// Swift baseline place *all* objects -- file content, directory records,
// NameRings and patches -- through this ring, which is what gives H2 its
// automatic load balance (§3.1 step 3).
//
// Rebalance() implements the two properties consistent hashing is used for:
//   * proportionality: each device owns a share of partitions proportional
//     to its weight (largest-remainder quotas) -- the (partition, replica)
//     slots granted to a device are its *virtual nodes*, so weight -> vnode
//     count directly (VnodeCount);
//   * minimal movement: a device keeps its current partitions up to its new
//     quota, so adding/removing one device only moves the necessary share.
// Replicas of a partition land on distinct devices whenever the device
// count allows.
//
// Membership epoch: every published assignment table carries a monotonically
// increasing epoch (bumped by Rebalance and ReplaceDevice).  Routing can only
// change at an epoch bump, which is what lets ObjectCloud pin a batch to one
// topology and lets middlewares learn membership changes over gossip the way
// they learn NameRing patches.
//
// Concurrency: ReplicasOfPartition/ReplicasOfHash are the hot read path
// (every cloud primitive resolves its replica set here) and run lock-free
// against a SeqLock-published assignment table -- a Rebalance racing
// readers can therefore never hand out a torn replica row (half old ring,
// half new ring), which would misdirect reads and quorum writes.  The
// administrative mutators (AddDevice/RemoveDevice/SetWeight/Rebalance/
// ReplaceDevice) and the device-table accessors serialize on the internal
// `admin_mu_` (GUARDED_BY below), so no external serialization is needed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/seqlock.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace h2 {

using DeviceId = std::uint32_t;

struct RingDevice {
  DeviceId id = 0;
  std::string name;       // e.g. "node-3"
  double weight = 1.0;    // relative capacity
  std::uint32_t zone = 0; // failure domain (rack / data center)
  bool active = true;
};

class PartitionRing {
 public:
  /// `part_power`: 2^part_power partitions (Swift defaults to 2^18 in
  /// production; tests use smaller rings).  `replica_count`: copies per
  /// object (the paper's deployment keeps 3, §5.1).
  PartitionRing(int part_power, int replica_count);

  /// Move is single-threaded construction/setup only (tests, builders):
  /// the seqlock protects readers racing Rebalance, not a ring being
  /// moved out from under them -- hence no locks taken here.
  PartitionRing(PartitionRing&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
      : part_power_(other.part_power_),
        replica_count_(other.replica_count_),
        slot_count_(other.slot_count_),
        devices_(std::move(other.devices_)),
        assignment_(std::move(other.assignment_)),
        assign_seq_(std::move(other.assign_seq_)),
        // h2lint: mo(setup-only move; no concurrent reader exists yet)
        balanced_(other.balanced_.load(std::memory_order_relaxed)),
        // h2lint: mo(setup-only move; no concurrent reader exists yet)
        epoch_(other.epoch_.load(std::memory_order_relaxed)) {}

  /// Registers a device.  Call Rebalance() afterwards to take effect.
  Status AddDevice(RingDevice device) EXCLUDES(admin_mu_);
  /// Marks a device inactive; its partitions move on the next Rebalance().
  Status RemoveDevice(DeviceId id) EXCLUDES(admin_mu_);
  Status SetWeight(DeviceId id, double weight) EXCLUDES(admin_mu_);

  /// Swaps a failed device for a fresh one in place: the replacement
  /// inherits every (partition, replica) slot the old device held, so the
  /// only data that moves is the old device's own share -- zero partitions
  /// reshuffle among the survivors.  The replacement's weight/zone come
  /// from `replacement`; publishing the relabeled table bumps the epoch.
  /// (A later Rebalance trues slot counts up to the replacement's weight.)
  Status ReplaceDevice(DeviceId old_id, RingDevice replacement)
      EXCLUDES(admin_mu_);

  /// (Re)assigns partitions to devices.  Idempotent.
  Status Rebalance() EXCLUDES(admin_mu_);

  /// Membership epoch: bumped once per published assignment table
  /// (Rebalance / ReplaceDevice).  0 before the first publish.
  std::uint64_t epoch() const {
    // h2lint: mo(acquire pairs with the publish-side acq_rel bump)
    return epoch_.load(std::memory_order_acquire);
  }

  int part_power() const { return part_power_; }
  int replica_count() const { return replica_count_; }
  std::uint32_t partition_count() const { return 1u << part_power_; }
  std::size_t active_device_count() const EXCLUDES(admin_mu_);

  /// Partition owning a 64-bit key hash (top bits, like Swift).
  std::uint32_t PartitionOfHash(std::uint64_t hash) const {
    return static_cast<std::uint32_t>(hash >> (64 - part_power_));
  }

  /// Devices holding the replicas of a partition, primary first.
  /// Empty before the first Rebalance().
  std::vector<DeviceId> ReplicasOfPartition(std::uint32_t partition) const;

  /// Distinct zones among active devices.
  std::size_t active_zone_count() const EXCLUDES(admin_mu_);

  /// Convenience: partition + replicas for a key hash.
  std::vector<DeviceId> ReplicasOfHash(std::uint64_t hash) const {
    return ReplicasOfPartition(PartitionOfHash(hash));
  }

  /// Number of (partition, replica) slots assigned to each device;
  /// indexed by DeviceId.  Used by balance tests and the ring bench.
  std::vector<std::uint32_t> SlotCounts() const EXCLUDES(admin_mu_);

  /// Virtual nodes currently assigned to `id`: its (partition, replica)
  /// slots in the published table.  Proportional to weight after a
  /// Rebalance; 0 for unknown or fully drained devices.
  std::uint32_t VnodeCount(DeviceId id) const;

  /// Snapshot of the registered devices (copy: the live table is guarded
  /// by admin_mu_ and may grow under a concurrent membership change).
  std::vector<RingDevice> devices() const EXCLUDES(admin_mu_);

 private:
  const RingDevice* FindDevice(DeviceId id) const REQUIRES(admin_mu_);
  RingDevice* FindDevice(DeviceId id) REQUIRES(admin_mu_);
  std::size_t ActiveZoneCountLocked() const REQUIRES(admin_mu_);
  Status RebalanceLocked() REQUIRES(admin_mu_);

  int part_power_;
  int replica_count_;
  std::size_t slot_count_;  // replica_count * partition_count, fixed

  /// Serializes membership mutations and guards the device table; also
  /// the writer mutex for assign_seq_ publishes (SeqLock discipline).
  mutable H2Mutex admin_mu_;
  std::vector<RingDevice> devices_ GUARDED_BY(admin_mu_);

  // assignment_[replica_row * partition_count + partition] = device id,
  // or kUnassigned before the first rebalance.  Entries are individually
  // atomic and every Rebalance publishes the whole table under
  // assign_seq_; readers retry until they observe one consistent
  // even-to-even snapshot.
  std::unique_ptr<std::atomic<DeviceId>[]> assignment_;
  SeqLock assign_seq_;
  std::atomic<bool> balanced_{false};
  std::atomic<std::uint64_t> epoch_{0};  // published-table generation

  static constexpr DeviceId kUnassigned = ~DeviceId{0};
};

}  // namespace h2
