// Summary statistics and series collection for the benchmark harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace h2 {

/// Streaming summary of a sample set (operation times, counts, ...).
class Summary {
 public:
  void Add(double v);

  std::size_t count() const { return values_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// q in [0,1]; linear interpolation between order statistics.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

/// One plotted series: y-values (e.g. mean op time in ms) over the sweep.
struct Series {
  std::string label;
  std::vector<double> values;
};

/// A figure-style table: one row per sweep point, one column per system.
/// Prints the aligned text table and a CSV block the way every bench
/// binary in bench/ reports its figure.
class SweepTable {
 public:
  SweepTable(std::string title, std::string x_label,
             std::string value_unit);

  void SetSweep(std::vector<double> xs);
  void AddSeries(Series series);

  /// Aligned human-readable table.
  std::string ToText() const;
  /// Machine-readable CSV (x, then one column per series).
  std::string ToCsv() const;
  /// Prints both to stdout.
  void Print() const;

  const std::vector<double>& sweep() const { return xs_; }
  const std::vector<Series>& series() const { return series_; }

 private:
  std::string title_;
  std::string x_label_;
  std::string unit_;
  std::vector<double> xs_;
  std::vector<Series> series_;
};

/// Least-squares slope of log(y) vs log(x): the empirical scaling
/// exponent.  ~0 -> O(1), ~1 -> linear, used by bench/tab1_complexity to
/// classify measured complexities against the paper's Table 1.
double LogLogSlope(const std::vector<double>& xs,
                   const std::vector<double>& ys);

/// Maps a log-log slope to a complexity class label.
std::string ComplexityClass(double slope);

}  // namespace h2
