#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace h2 {

void Summary::Add(double v) {
  values_.push_back(v);
  sorted_ = false;
}

void Summary::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Summary::min() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Summary::max() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::percentile(double q) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

SweepTable::SweepTable(std::string title, std::string x_label,
                       std::string value_unit)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      unit_(std::move(value_unit)) {}

void SweepTable::SetSweep(std::vector<double> xs) { xs_ = std::move(xs); }

void SweepTable::AddSeries(Series series) {
  series_.push_back(std::move(series));
}

namespace {
std::string FormatValue(double v) {
  char buf[40];
  if (v >= 10000.0 || (v != 0.0 && std::fabs(v) < 0.01)) {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}
}  // namespace

std::string SweepTable::ToText() const {
  std::string out = "== " + title_ + " (" + unit_ + ") ==\n";
  // Header.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%14s", x_label_.c_str());
  out += buf;
  for (const Series& s : series_) {
    std::snprintf(buf, sizeof(buf), " %16s", s.label.c_str());
    out += buf;
  }
  out += '\n';
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%14.0f", xs_[i]);
    out += buf;
    for (const Series& s : series_) {
      const double v = i < s.values.size() ? s.values[i] : 0.0;
      std::snprintf(buf, sizeof(buf), " %16s", FormatValue(v).c_str());
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string SweepTable::ToCsv() const {
  std::string out = x_label_;
  for (const Series& s : series_) {
    out += ',';
    out += s.label;
  }
  out += '\n';
  char buf[40];
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%g", xs_[i]);
    out += buf;
    for (const Series& s : series_) {
      const double v = i < s.values.size() ? s.values[i] : 0.0;
      std::snprintf(buf, sizeof(buf), ",%g", v);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void SweepTable::Print() const {
  std::fputs(ToText().c_str(), stdout);
  std::fputs("-- csv --\n", stdout);
  std::fputs(ToCsv().c_str(), stdout);
  std::fputs("\n", stdout);
}

double LogLogSlope(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0) continue;
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++used;
  }
  if (used < 2) return 0.0;
  const double denom = static_cast<double>(used) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (static_cast<double>(used) * sxy - sx * sy) / denom;
}

std::string ComplexityClass(double slope) {
  if (slope < 0.15) return "O(1)";
  if (slope < 0.5) return "O(log)";
  if (slope < 1.3) return "O(linear)";
  return "O(superlinear)";
}

}  // namespace h2
