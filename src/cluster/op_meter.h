// Per-operation cost accounting.
//
// The paper's metric (§5.2) is *operation time*: how long the storage
// system takes to process one filesystem operation, excluding client RTT.
// Every object-store primitive and index access charges its simulated
// latency and increments primitive counters on the OpMeter threaded
// through the call.  Batched sub-operations (e.g. the per-child stats of a
// detailed LIST) are priced by ChargeCriticalPath: the batch is scheduled
// into waves of a configurable width and each wave costs its *slowest*
// lane (plus per-device queueing), so elapsed time models a pipelined
// proxy rather than a serial client -- and a wave of one large GET plus
// many cheap HEADs is bounded by the GET, not averaged away.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace h2 {

/// Cost of one filesystem operation.
struct OpCost {
  VirtualNanos elapsed = 0;  // simulated wall time of the operation
  std::uint64_t bytes_moved = 0;

  // Primitive counts (object cloud).
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t heads = 0;
  std::uint64_t copies = 0;
  std::uint64_t scanned_objects = 0;
  /// Operations that failed after charging (quorum not reached, injected
  /// fault): a failed PUT still prices its attempt, but must stay
  /// distinguishable from a success in bench counters.
  std::uint64_t failed_ops = 0;

  // Secondary-structure counts (baselines).
  std::uint64_t db_pages = 0;   // file-path DB page accesses (Swift model)
  std::uint64_t index_rpcs = 0; // index-server RPCs (DP / single-index)

  // Batched-execution accounting (OpMeter::ChargeCriticalPath, used by
  // ObjectCloud::ExecuteBatch): how many batch spans were priced, how many
  // lanes they carried, what a serial client would have paid for them, and
  // what the critical-path schedule actually charged.
  std::uint64_t batches = 0;
  std::uint64_t batched_ops = 0;
  VirtualNanos batch_serial_cost = 0;
  VirtualNanos batch_critical_cost = 0;

  std::uint64_t object_primitives() const {
    return gets + puts + deletes + heads + copies;
  }

  double elapsed_ms() const { return ToMillis(elapsed); }

  /// Mean lanes per batch span (0 when no batches were priced).
  double mean_batch_width() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_ops) /
                              static_cast<double>(batches);
  }
  /// Fraction of the serial batch cost saved by wave scheduling, in
  /// [0, 1] (0 when nothing was batched or W = 1 bought nothing).
  double batch_savings() const {
    if (batch_serial_cost == 0) return 0.0;
    const double ratio = static_cast<double>(batch_critical_cost) /
                         static_cast<double>(batch_serial_cost);
    return std::max(0.0, 1.0 - ratio);
  }

  OpCost& operator+=(const OpCost& other) {
    elapsed += other.elapsed;
    bytes_moved += other.bytes_moved;
    gets += other.gets;
    puts += other.puts;
    deletes += other.deletes;
    heads += other.heads;
    copies += other.copies;
    scanned_objects += other.scanned_objects;
    failed_ops += other.failed_ops;
    db_pages += other.db_pages;
    index_rpcs += other.index_rpcs;
    batches += other.batches;
    batched_ops += other.batched_ops;
    batch_serial_cost += other.batch_serial_cost;
    batch_critical_cost += other.batch_critical_cost;
    return *this;
  }
};

/// Accumulates the cost of the operation currently in flight.
class OpMeter {
 public:
  void Reset() {
    // zone_ and the execution context are caller identity, not per-op
    // state: they survive the per-operation Reset.
    cost_ = OpCost{};
  }

  /// Zone of the proxy/middleware issuing the operations (geo-distributed
  /// deployments, §4.1).  The cloud charges inter-zone hops for replicas
  /// outside this zone.
  void SetZone(std::uint32_t zone) { zone_ = zone; }
  std::uint32_t zone() const { return zone_; }

  // --- execution context (sharded engine) ---------------------------------
  // A shard of the sharded wall-clock engine binds its own virtual clock
  // domain and jitter RNG stream to the meter it threads through the
  // cloud.  The cloud then advances/reads *this* clock and draws jitter
  // from *this* stream instead of the global ones, which is what makes a
  // multi-threaded replay bit-identical to the serial schedule: each
  // shard's timestamps and jitter values depend only on that shard's own
  // op order, never on cross-thread interleaving (the OpMeter jitter
  // nondeterminism fix).  Null (the default) means "use the cloud's
  // global clock / jitter RNG" -- the unchanged serial behaviour.
  void SetClockDomain(SimClock* clock) { clock_domain_ = clock; }
  SimClock* clock_domain() const { return clock_domain_; }
  void SetJitterStream(Rng* stream) { jitter_stream_ = stream; }
  Rng* jitter_stream() const { return jitter_stream_; }
  /// Copies caller identity (zone + execution context) from `other`;
  /// used for the private sub-meters of batched fan-outs so a batch
  /// issued by a shard stays inside that shard's clock domain.
  void InheritContext(const OpMeter& other) {
    zone_ = other.zone_;
    clock_domain_ = other.clock_domain_;
    jitter_stream_ = other.jitter_stream_;
  }

  /// Sequential step: adds to elapsed time.
  void Charge(VirtualNanos d) { cost_.elapsed += d; }

  /// Sentinel queue id for lanes that contend on nothing (pure CPU work,
  /// index-server row fetches): they parallelize freely within a wave.
  static constexpr std::uint32_t kNoQueue = 0xffffffffu;

  /// One lane of a batched span: the serial cost of an independent
  /// sub-operation, tagged with the serialization domain it contends on
  /// (for object I/O, the primary storage node's device id).
  struct BatchLane {
    VirtualNanos elapsed = 0;
    std::uint32_t queue = kNoQueue;
  };

  /// Prices a batch of independent lanes executed `width` at a time:
  /// lanes are packed, in order, into consecutive waves of at most
  /// `width`; a wave costs the maximum over its lanes, except that lanes
  /// sharing a queue serialize behind each other at `queue_delay` per
  /// queued request (the device services the wave in one sweep; queued
  /// requests pay transfer, not a fresh seek).  Elapsed grows by the sum
  /// of wave costs -- the batch's critical path -- which the batch
  /// counters record alongside the serial sum.  Returns the amount
  /// charged.  `width` <= 1 degenerates to the exact serial sum.
  VirtualNanos ChargeCriticalPath(const std::vector<BatchLane>& lanes,
                                  std::uint64_t width,
                                  VirtualNanos queue_delay = 0) {
    if (lanes.empty()) return 0;
    width = std::max<std::uint64_t>(width, 1);
    VirtualNanos total = 0;
    VirtualNanos serial = 0;
    std::unordered_map<std::uint32_t, std::uint64_t> queue_depth;
    for (std::size_t begin = 0; begin < lanes.size(); begin += width) {
      const std::size_t end = std::min(lanes.size(), begin + width);
      VirtualNanos wave = 0;
      queue_depth.clear();
      for (std::size_t i = begin; i < end; ++i) {
        serial += lanes[i].elapsed;
        VirtualNanos lane = lanes[i].elapsed;
        if (lanes[i].queue != kNoQueue) {
          lane += queue_delay * static_cast<VirtualNanos>(
                                    queue_depth[lanes[i].queue]++);
        }
        wave = std::max(wave, lane);
      }
      total += wave;
    }
    cost_.elapsed += total;
    ++cost_.batches;
    cost_.batched_ops += lanes.size();
    cost_.batch_serial_cost += serial;
    cost_.batch_critical_cost += total;
    return total;
  }

  void AddBytes(std::uint64_t n) { cost_.bytes_moved += n; }
  void CountGet() { ++cost_.gets; }
  void CountPut() { ++cost_.puts; }
  void CountDelete() { ++cost_.deletes; }
  void CountHead() { ++cost_.heads; }
  void CountCopy() { ++cost_.copies; }
  void CountScanned(std::uint64_t n) { cost_.scanned_objects += n; }
  void CountFailed() { ++cost_.failed_ops; }
  void CountDbPages(std::uint64_t n) { cost_.db_pages += n; }
  void CountIndexRpc() { ++cost_.index_rpcs; }

  void Merge(const OpCost& sub) { cost_ += sub; }

  const OpCost& cost() const { return cost_; }

 private:
  OpCost cost_;
  std::uint32_t zone_ = 0;
  SimClock* clock_domain_ = nullptr;  // not owned; null = global clock
  Rng* jitter_stream_ = nullptr;      // not owned; null = global stream
};

}  // namespace h2
