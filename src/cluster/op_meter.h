// Per-operation cost accounting.
//
// The paper's metric (§5.2) is *operation time*: how long the storage
// system takes to process one filesystem operation, excluding client RTT.
// Every object-store primitive and index access charges its simulated
// latency and increments primitive counters on the OpMeter threaded
// through the call.  Batched sub-operations (e.g. the per-child stats of a
// detailed LIST) are charged as parallel lanes of a configurable width, so
// elapsed time models a pipelined proxy rather than a serial client.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/clock.h"

namespace h2 {

/// Cost of one filesystem operation.
struct OpCost {
  VirtualNanos elapsed = 0;  // simulated wall time of the operation
  std::uint64_t bytes_moved = 0;

  // Primitive counts (object cloud).
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t heads = 0;
  std::uint64_t copies = 0;
  std::uint64_t scanned_objects = 0;
  /// Operations that failed after charging (quorum not reached, injected
  /// fault): a failed PUT still prices its attempt, but must stay
  /// distinguishable from a success in bench counters.
  std::uint64_t failed_ops = 0;

  // Secondary-structure counts (baselines).
  std::uint64_t db_pages = 0;   // file-path DB page accesses (Swift model)
  std::uint64_t index_rpcs = 0; // index-server RPCs (DP / single-index)

  std::uint64_t object_primitives() const {
    return gets + puts + deletes + heads + copies;
  }

  double elapsed_ms() const { return ToMillis(elapsed); }

  OpCost& operator+=(const OpCost& other) {
    elapsed += other.elapsed;
    bytes_moved += other.bytes_moved;
    gets += other.gets;
    puts += other.puts;
    deletes += other.deletes;
    heads += other.heads;
    copies += other.copies;
    scanned_objects += other.scanned_objects;
    failed_ops += other.failed_ops;
    db_pages += other.db_pages;
    index_rpcs += other.index_rpcs;
    return *this;
  }
};

/// Accumulates the cost of the operation currently in flight.
class OpMeter {
 public:
  void Reset() {
    cost_ = OpCost{};  // zone_ is caller identity, not per-op state
  }

  /// Zone of the proxy/middleware issuing the operations (geo-distributed
  /// deployments, §4.1).  The cloud charges inter-zone hops for replicas
  /// outside this zone.
  void SetZone(std::uint32_t zone) { zone_ = zone; }
  std::uint32_t zone() const { return zone_; }

  /// Sequential step: adds to elapsed time.
  void Charge(VirtualNanos d) { cost_.elapsed += d; }

  /// `items` independent sub-steps of `per_item` cost executed on
  /// `width` parallel lanes: elapsed grows by ceil(items/width)*per_item.
  void ChargeBatch(std::uint64_t items, std::uint64_t width,
                   VirtualNanos per_item) {
    if (items == 0) return;
    width = std::max<std::uint64_t>(width, 1);
    const std::uint64_t waves = (items + width - 1) / width;
    cost_.elapsed += static_cast<VirtualNanos>(waves) * per_item;
  }

  /// Re-costs everything charged since `mark` (a prior cost().elapsed
  /// value) as if it ran on `width` parallel lanes.  Used for batched
  /// sub-requests issued through sequential primitive calls, e.g. the
  /// per-child HEADs of a detailed LIST.
  void FoldParallel(VirtualNanos mark, std::uint64_t width) {
    if (width <= 1 || cost_.elapsed <= mark) return;
    const VirtualNanos extra = cost_.elapsed - mark;
    cost_.elapsed =
        mark + (extra + static_cast<VirtualNanos>(width) - 1) /
                   static_cast<VirtualNanos>(width);
  }

  void AddBytes(std::uint64_t n) { cost_.bytes_moved += n; }
  void CountGet() { ++cost_.gets; }
  void CountPut() { ++cost_.puts; }
  void CountDelete() { ++cost_.deletes; }
  void CountHead() { ++cost_.heads; }
  void CountCopy() { ++cost_.copies; }
  void CountScanned(std::uint64_t n) { cost_.scanned_objects += n; }
  void CountFailed() { ++cost_.failed_ops; }
  void CountDbPages(std::uint64_t n) { cost_.db_pages += n; }
  void CountIndexRpc() { ++cost_.index_rpcs; }

  void Merge(const OpCost& sub) { cost_ += sub; }

  const OpCost& cost() const { return cost_; }

 private:
  OpCost cost_;
  std::uint32_t zone_ = 0;
};

}  // namespace h2
