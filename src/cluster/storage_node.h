// A single storage node of the simulated object cloud.
//
// Thread-safe in-memory key/object store with failure injection.  Latency
// is *not* charged here -- the ObjectCloud proxy layer owns accounting --
// so a node is a pure state container, which keeps the concurrency story
// simple (one lock, no calls out while holding it).
//
// Lock discipline: a reader/writer lock guards the object/tombstone/hint
// maps -- reads (Get/Head/Contains/TombstoneTime/counts) take the shared
// side so the sharded engine's read-heavy workloads scale across
// threads; mutations take the exclusive side.  The failure-injection
// knobs are atomics (flipped by tests while workers are live) and the
// per-node fault RNG draws under its own leaf mutex, because a const
// read path that mutated RNG state under a shared lock would be a data
// race.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/object.h"
#include "common/rng.h"
#include "common/status.h"
#include "ring/partition_ring.h"

namespace h2 {

/// A write a replica missed, parked on a surviving node until the target
/// answers again (Swift's hinted handoff).  `tombstone != 0` means the
/// missed write was a delete and replays as `Delete(key, tombstone)`;
/// otherwise `value` replays as a last-writer-wins put.
struct ReplicaHint {
  std::string key;
  ObjectValue value;
  VirtualNanos tombstone = 0;
  DeviceId target = 0;
};

class StorageNode {
 public:
  StorageNode(DeviceId id, std::string name, std::uint64_t fault_seed,
              std::uint32_t zone = 0)
      : id_(id), name_(std::move(name)), zone_(zone),
        fault_rng_(fault_seed) {}

  DeviceId id() const { return id_; }
  const std::string& name() const { return name_; }
  std::uint32_t zone() const { return zone_; }

  Status Put(const std::string& key, ObjectValue value);
  /// Last-writer-wins put used by replica repair: applies `value` only if
  /// it is strictly newer than the incumbent copy (and any tombstone), so
  /// a repair push racing a foreground overwrite can never roll a replica
  /// back.  Unlike Put it clones `value` verbatim (no creation-time
  /// preservation): repair replicates bytes, it does not author writes.
  Status PutIfNewer(const std::string& key, ObjectValue value);
  Result<ObjectValue> Get(const std::string& key) const;
  Result<ObjectHead> Head(const std::string& key) const;
  /// Removes the object and records a tombstone at `ts` (0 = untimed).
  /// Tombstones let the cloud's replica fall-through distinguish "this
  /// replica missed the write" from "this object was deleted" -- the same
  /// job Swift's X-Timestamp tombstones do.
  Status Delete(const std::string& key, VirtualNanos ts = 0);
  bool Contains(const std::string& key) const;
  /// Deletion timestamp if this node holds a tombstone for `key`, else 0.
  VirtualNanos TombstoneTime(const std::string& key) const;

  /// Visits every (key, object) on this node.  The callback runs under the
  /// node lock; it must not call back into the node.
  void ForEach(
      const std::function<void(const std::string&, const ObjectValue&)>& fn)
      const;

  std::uint64_t object_count() const;
  std::uint64_t logical_bytes() const;

  // --- hinted handoff ------------------------------------------------------
  /// Parks a hint for a replica that missed a write.  Hints survive
  /// injected request faults (they are a local queue append) but not a
  /// down node.
  Status QueueHint(ReplicaHint hint);
  /// Removes and returns every queued hint whose target `deliverable`
  /// approves (typically: the target node answers again).
  std::vector<ReplicaHint> TakeHints(
      const std::function<bool(DeviceId)>& deliverable);
  std::size_t hint_count() const;

  // --- failure injection -------------------------------------------------
  /// A down node fails every request with kUnavailable.
  void SetDown(bool down);
  bool IsDown() const;
  /// Each request independently fails with this probability (deterministic
  /// per-node stream).
  void SetErrorRate(double rate);

 private:
  Status CheckAvailable() const;

  const DeviceId id_;
  const std::string name_;
  const std::uint32_t zone_;

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, ObjectValue> objects_;
  std::unordered_map<std::string, VirtualNanos> tombstones_;
  std::vector<ReplicaHint> hints_;
  std::atomic<bool> down_{false};
  std::atomic<double> error_rate_{0.0};
  mutable std::mutex fault_mu_;  // leaf lock: guards fault_rng_ only
  mutable Rng fault_rng_;
};

}  // namespace h2
