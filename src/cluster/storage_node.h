// A single storage node of the simulated object cloud.
//
// Thread-safe key/object store with failure injection, holding its state
// in a pluggable StorageBackend (cluster/backend/): volatile in-memory
// maps or a durable append-only segment log with group-commit fsync and
// crash-recovery replay.  Latency is *not* charged here -- the
// ObjectCloud proxy layer owns accounting -- so a node is replication
// semantics (LWW against tombstones) plus a state container.
//
// Lock discipline: machine-checked by the GUARDED_BY/REQUIRES
// annotations below (Clang -Werror=thread-safety) and by the
// storage_node.mu_ -> storage_node.fault_mu_ edge in
// tools/lock_hierarchy.txt.  What the annotations cannot state:
//   * The backend is lock-free by contract
//     (cluster/backend/storage_backend.h): backends never call back into
//     the node or out to any other lock, so `mu_` -> backend is the only
//     ordering through it and is trivially acyclic.  Pointers a backend
//     returns (Find) are used only while `mu_` is held.
//   * `fault_mu_` exists because the fault RNG draws on the *shared*
//     side of `mu_`, where mutating RNG state would be a data race
//     between concurrent readers; it is a leaf -- nothing is acquired
//     under it.
//   * The failure-injection knobs (`down_`, `error_rate_`) and the hint
//     overflow counter are atomics, flipped/read by tests and the
//     monitor while workers are live, with no lock held at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/backend/storage_backend.h"
#include "cluster/object.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "ring/partition_ring.h"

namespace h2 {

/// A write a replica missed, parked on a surviving node until the target
/// answers again (Swift's hinted handoff).  `tombstone != 0` means the
/// missed write was a delete and replays as `Delete(key, tombstone)`;
/// otherwise `value` replays as a last-writer-wins put.
struct ReplicaHint {
  std::string key;
  ObjectValue value;
  VirtualNanos tombstone = 0;
  DeviceId target = 0;
};

class StorageNode {
 public:
  /// Default bound on parked hints (see QueueHint): high enough that the
  /// repair tests' outage windows never touch it, low enough that a
  /// target staying down for days degrades to scrub-repair instead of
  /// growing the holder's memory without bound.
  static constexpr std::size_t kDefaultMaxHints = 65'536;

  StorageNode(DeviceId id, std::string name, std::uint64_t fault_seed,
              std::uint32_t zone = 0, const BackendConfig& backend = {},
              std::size_t max_hints = kDefaultMaxHints)
      : id_(id), name_(std::move(name)), zone_(zone),
        backend_(MakeStorageBackend(backend)), max_hints_(max_hints),
        fault_rng_(fault_seed) {}

  DeviceId id() const { return id_; }
  const std::string& name() const { return name_; }
  std::uint32_t zone() const { return zone_; }

  Status Put(const std::string& key, ObjectValue value);
  /// Last-writer-wins put used by replica repair: applies `value` only if
  /// it is strictly newer than the incumbent copy (and any tombstone), so
  /// a repair push racing a foreground overwrite can never roll a replica
  /// back.  Unlike Put it clones `value` verbatim (no creation-time
  /// preservation): repair replicates bytes, it does not author writes.
  Status PutIfNewer(const std::string& key, ObjectValue value);
  Result<ObjectValue> Get(const std::string& key) const;
  Result<ObjectHead> Head(const std::string& key) const;
  /// Removes the object and records a tombstone at `ts` (0 = untimed).
  /// Tombstones let the cloud's replica fall-through distinguish "this
  /// replica missed the write" from "this object was deleted" -- the same
  /// job Swift's X-Timestamp tombstones do.
  ///
  /// Return semantics differ by flavour:
  ///   * `ts != 0` (a replicated delete): returns Ok whether or not this
  ///     replica held a copy -- the tombstone committed, and a replica
  ///     that merely missed the original write has still durably applied
  ///     the delete.  (It used to return NotFound here, which made hint
  ///     replay and repair accounting treat a committed tombstone as a
  ///     failure.)
  ///   * `ts == 0` (administrative erase): returns NotFound when there
  ///     was nothing to erase.
  Status Delete(const std::string& key, VirtualNanos ts = 0);
  bool Contains(const std::string& key) const;
  /// Deletion timestamp if this node holds a tombstone for `key`, else 0.
  VirtualNanos TombstoneTime(const std::string& key) const;

  /// Visits every (key, object) on this node in ascending key order.  The
  /// callback runs under the node lock; it must not call back into the
  /// node.
  void ForEach(
      const std::function<void(const std::string&, const ObjectValue&)>& fn)
      const;

  std::uint64_t object_count() const;
  std::uint64_t logical_bytes() const;

  // --- hinted handoff ------------------------------------------------------
  /// Parks a hint for a replica that missed a write.  Hints survive
  /// injected request faults (they are a local queue append) but not a
  /// down or crashed node.  The queue is bounded by `max_hints`: once a
  /// target has been down long enough to fill it, further hints are
  /// refused (counted in hint_overflow_count()) and convergence degrades
  /// to the anti-entropy scrub -- bounded memory instead of OOM.
  Status QueueHint(ReplicaHint hint);
  /// Removes and returns every queued hint whose target `deliverable`
  /// approves (typically: the target node answers again).
  std::vector<ReplicaHint> TakeHints(
      const std::function<bool(DeviceId)>& deliverable);
  std::size_t hint_count() const;
  /// Hints refused because the queue was full (monotonic).
  std::uint64_t hint_overflow_count() const {
    // h2lint: mo(monotonic counter; readers tolerate staleness)
    return hint_overflows_.load(std::memory_order_relaxed);
  }

  // --- failure injection / durability --------------------------------------
  /// A down node fails every request with kUnavailable.
  void SetDown(bool down);
  bool IsDown() const;
  /// Each request independently fails with this probability (deterministic
  /// per-node stream).
  void SetErrorRate(double rate);
  /// Power loss: drops every piece of volatile state -- the backend's
  /// un-fsynced writes (all of them, for the memory backend) and the
  /// parked hint queue -- and marks the node down until Restart().
  /// Fsynced segment-log state survives.
  void Crash();
  /// Restart after Crash(): replays the backend's durable log to rebuild
  /// its index, then brings the node back up.  On a recovery error the
  /// node stays down.
  Status Restart();
  /// Explicit fsync barrier: makes everything applied so far durable
  /// (closes an open group-commit batch).
  void FlushBackend();
  /// Durability/backend counters (fsyncs, replayed/lost records, ...).
  BackendStats backend_stats() const;
  /// Static name of the backend in play ("memory" / "segment-log").
  const char* backend_name() const;

 private:
  /// Availability gate shared by every request path: runs on both the
  /// shared and exclusive sides of mu_, and takes the leaf fault_mu_ when
  /// an error rate is injected.
  Status CheckAvailable() const REQUIRES_SHARED(mu_) EXCLUDES(fault_mu_);

  const DeviceId id_;
  const std::string name_;
  const std::uint32_t zone_;

  mutable H2SharedMutex mu_;
  std::unique_ptr<StorageBackend> backend_ GUARDED_BY(mu_);
  std::vector<ReplicaHint> hints_ GUARDED_BY(mu_);
  const std::size_t max_hints_;
  std::atomic<std::uint64_t> hint_overflows_{0};
  std::atomic<bool> down_{false};
  std::atomic<double> error_rate_{0.0};
  mutable H2Mutex fault_mu_;  // leaf: see lock_hierarchy.txt
  mutable Rng fault_rng_ GUARDED_BY(fault_mu_);
};

}  // namespace h2
