// The object value type stored by the simulated cloud.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/clock.h"

namespace h2 {

/// An object as stored on a node.
///
/// `payload` holds the actual bytes; `logical_size` is the size the object
/// *represents*.  Workload generators create multi-gigabyte "video" files
/// without materializing the bytes: they store a small sample payload and
/// declare the real size, which is what latency byte-costs and the storage
/// overhead experiments (Fig. 14/15) account.  For ordinary small objects
/// (NameRings, directory records, text files) the two are equal.
struct ObjectValue {
  std::string payload;
  std::uint64_t logical_size = 0;
  std::map<std::string, std::string> metadata;
  VirtualNanos created = 0;
  VirtualNanos modified = 0;

  static ObjectValue FromString(std::string data, VirtualNanos now) {
    ObjectValue v;
    v.logical_size = data.size();
    v.payload = std::move(data);
    v.created = v.modified = now;
    return v;
  }
};

/// Metadata-only view returned by HEAD.
struct ObjectHead {
  std::uint64_t logical_size = 0;
  std::map<std::string, std::string> metadata;
  VirtualNanos created = 0;
  VirtualNanos modified = 0;
};

}  // namespace h2
