#include "cluster/object_cloud.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "hash/md5.h"

namespace h2 {

ObjectCloud::ObjectCloud(const CloudConfig& config)
    : ring_(config.part_power, config.replica_count),
      latency_(config.latency, config.seed),
      replica_count_(config.replica_count),
      zone_count_(std::max(config.zone_count, 1)) {
  assert(config.node_count >= 1);
  SplitMix64 seeder(config.seed);
  for (int i = 0; i < config.node_count; ++i) {
    const auto id = static_cast<DeviceId>(i);
    const auto zone = static_cast<std::uint32_t>(i % zone_count_);
    std::string name = "node-" + std::to_string(i);
    nodes_.push_back(
        std::make_unique<StorageNode>(id, name, seeder.Next(), zone));
    const Status st =
        ring_.AddDevice(RingDevice{id, std::move(name), 1.0, zone});
    assert(st.ok());
    (void)st;
  }
  const Status st = ring_.Rebalance();
  assert(st.ok());
  (void)st;
}

std::vector<StorageNode*> ObjectCloud::ReplicaNodes(
    const std::string& key, std::uint32_t reader_zone) const {
  const std::uint64_t hash = Md5::Hash64(key);
  std::vector<StorageNode*> out;
  for (DeviceId dev : ring_.ReplicasOfHash(hash)) {
    out.push_back(nodes_[dev].get());
  }
  // Read affinity: same-zone replicas first, original order otherwise.
  std::stable_partition(out.begin(), out.end(),
                        [reader_zone](const StorageNode* n) {
                          return n->zone() == reader_zone;
                        });
  return out;
}

VirtualNanos ObjectCloud::ZoneSurcharge(const StorageNode& node,
                                        const OpMeter& meter) const {
  return node.zone() == meter.zone() ? 0
                                     : latency_.profile().inter_zone_hop;
}

Status ObjectCloud::Put(const std::string& key, ObjectValue value,
                        OpMeter& meter, PutOptions opts) {
  if (!put_fault_.empty() && key.find(put_fault_) != std::string::npos) {
    return Status::Internal("injected put fault: " + key);
  }
  const std::uint64_t size = value.logical_size;
  const std::vector<StorageNode*> replicas = ReplicaNodes(key, meter.zone());
  {
    std::lock_guard lock(latency_mu_);
    VirtualNanos base = latency_.Jitter(latency_.PutBase());
    if (opts.durable) base += latency_.profile().durable_commit;
    // Replication fans out in parallel; the farthest replica's ack
    // dominates when the quorum spans zones.
    VirtualNanos zone_extra = 0;
    int remote = 0;
    for (const StorageNode* node : replicas) {
      if (node->zone() != meter.zone()) ++remote;
    }
    const int quorum = replica_count_ / 2 + 1;
    if (static_cast<int>(replicas.size()) - remote < quorum) {
      zone_extra = latency_.profile().inter_zone_hop;
    }
    const VirtualNanos total = base + latency_.ByteCost(size) + zone_extra;
    meter.Charge(total);
    clock_.Advance(total);
  }
  meter.CountPut();
  meter.AddBytes(size);

  value.modified = clock_.Tick();
  if (value.created == 0) value.created = value.modified;

  int acks = 0;
  Status last_error = Status::Internal("no replicas");
  for (StorageNode* node : replicas) {
    const Status st = node->Put(key, value);
    if (st.ok()) {
      ++acks;
    } else {
      last_error = st;
    }
  }
  // Durability comes from fsync-before-ack (charged above), not from
  // waiting for every replica: a majority quorum keeps writes available
  // through single-node failures, like Swift's write affinity.
  const int needed = replica_count_ / 2 + 1;
  if (acks < std::min(needed, static_cast<int>(nodes_.size()))) {
    return last_error;
  }
  return Status::Ok();
}

Result<ObjectValue> ObjectCloud::Get(const std::string& key,
                                     OpMeter& meter) {
  // Swift-style read: probe replicas in (zone-affine) ring order; a
  // replica that answers 404 does NOT end the read -- it may simply have
  // missed the write -- unless it holds a tombstone newer than any object
  // copy, which means the object was deleted.
  meter.CountGet();
  bool any_answer = false;
  VirtualNanos newest_tombstone = 0;
  for (StorageNode* node : ReplicaNodes(key, meter.zone())) {
    Result<ObjectValue> r = node->Get(key);
    if (r.code() == ErrorCode::kUnavailable) {
      std::lock_guard lock(latency_mu_);
      meter.Charge(latency_.Jitter(latency_.profile().lan_hop));
      continue;
    }
    any_answer = true;
    if (r.ok()) {
      if (r->modified <= std::max(newest_tombstone,
                                  node->TombstoneTime(key))) {
        // A newer delete supersedes this copy.  The probe still made a
        // round trip to the replica; price it like the 404 path below.
        newest_tombstone =
            std::max(newest_tombstone, node->TombstoneTime(key));
        std::lock_guard lock(latency_mu_);
        const VirtualNanos probe = latency_.Jitter(latency_.HeadBase()) +
                                   ZoneSurcharge(*node, meter);
        meter.Charge(probe);
        clock_.Advance(probe);
        continue;
      }
      const std::uint64_t size = r->logical_size;
      std::lock_guard lock(latency_mu_);
      const VirtualNanos total = latency_.Jitter(latency_.GetBase()) +
                                 latency_.ByteCost(size) +
                                 ZoneSurcharge(*node, meter);
      meter.Charge(total);
      clock_.Advance(total);
      meter.AddBytes(size);
      return r;
    }
    // 404: remember any tombstone and keep probing.
    newest_tombstone = std::max(newest_tombstone, node->TombstoneTime(key));
    std::lock_guard lock(latency_mu_);
    const VirtualNanos probe = latency_.Jitter(latency_.HeadBase()) +
                               ZoneSurcharge(*node, meter);
    meter.Charge(probe);
    clock_.Advance(probe);
  }
  if (any_answer) return Status::NotFound("no such object: " + key);
  return Status::Unavailable("no replica reachable for: " + key);
}

Result<ObjectHead> ObjectCloud::Head(const std::string& key,
                                     OpMeter& meter) {
  meter.CountHead();
  bool any_answer = false;
  VirtualNanos newest_tombstone = 0;
  for (StorageNode* node : ReplicaNodes(key, meter.zone())) {
    Result<ObjectHead> r = node->Head(key);
    if (r.code() == ErrorCode::kUnavailable) {
      std::lock_guard lock(latency_mu_);
      meter.Charge(latency_.Jitter(latency_.profile().lan_hop));
      continue;
    }
    any_answer = true;
    std::lock_guard lock(latency_mu_);
    const VirtualNanos total = latency_.Jitter(latency_.HeadBase()) +
                               ZoneSurcharge(*node, meter);
    meter.Charge(total);
    clock_.Advance(total);
    if (r.ok()) {
      if (r->modified <= std::max(newest_tombstone,
                                  node->TombstoneTime(key))) {
        continue;
      }
      return r;
    }
    newest_tombstone = std::max(newest_tombstone, node->TombstoneTime(key));
  }
  if (any_answer) return Status::NotFound("no such object: " + key);
  return Status::Unavailable("no replica reachable for: " + key);
}

Status ObjectCloud::Delete(const std::string& key, OpMeter& meter) {
  {
    std::lock_guard lock(latency_mu_);
    const VirtualNanos total = latency_.Jitter(latency_.DeleteBase());
    meter.Charge(total);
    clock_.Advance(total);
  }
  meter.CountDelete();

  const VirtualNanos tombstone_ts = clock_.Tick();
  int acks = 0;
  bool found = false;
  Status last_error = Status::Internal("no replicas");
  for (StorageNode* node : ReplicaNodes(key)) {
    const Status st = node->Delete(key, tombstone_ts);
    if (st.ok()) {
      ++acks;
      found = true;
    } else if (st.code() == ErrorCode::kNotFound) {
      ++acks;  // already absent counts as success for idempotency
    } else {
      last_error = st;
    }
  }
  const int needed =
      std::min(replica_count_ / 2 + 1, static_cast<int>(nodes_.size()));
  if (acks < needed) return last_error;
  if (!found) return Status::NotFound("no such object: " + key);
  return Status::Ok();
}

Status ObjectCloud::Copy(const std::string& src, const std::string& dst,
                         OpMeter& meter) {
  meter.CountCopy();
  // Read from one source replica, write to the destination replicas --
  // all inside the cluster, pipelined (CopyBase); the proxy sees only
  // control traffic.
  Status read_error = Status::Internal("no replicas");
  for (StorageNode* node : ReplicaNodes(src)) {
    Result<ObjectValue> r = node->Get(src);
    if (r.code() == ErrorCode::kNotFound) return r.status();
    if (!r.ok()) {
      read_error = r.status();
      continue;
    }
    ObjectValue value = std::move(r).value();
    {
      std::lock_guard lock(latency_mu_);
      const VirtualNanos total = latency_.Jitter(latency_.CopyBase()) +
                                 latency_.ByteCost(value.logical_size);
      meter.Charge(total);
      clock_.Advance(total);
    }
    meter.AddBytes(value.logical_size);
    value.created = 0;  // fresh object at the destination
    value.modified = clock_.Tick();
    value.created = value.modified;

    int acks = 0;
    Status write_error = Status::Internal("no replicas");
    for (StorageNode* dst_node : ReplicaNodes(dst)) {
      const Status st = dst_node->Put(dst, value);
      if (st.ok()) {
        ++acks;
      } else {
        write_error = st;
      }
    }
    const int needed =
        std::min(replica_count_ / 2 + 1, static_cast<int>(nodes_.size()));
    return acks >= needed ? Status::Ok() : write_error;
  }
  return read_error;
}

bool ObjectCloud::Exists(const std::string& key, OpMeter& meter) {
  return Head(key, meter).ok();
}

void ObjectCloud::Scan(const std::function<void(const std::string&,
                                                const ObjectValue&)>& visitor,
                       OpMeter& meter) {
  // Nodes scan concurrently; elapsed time is the busiest node's share.
  std::uint64_t busiest = 0;
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    std::uint64_t visited = 0;
    node->ForEach([&](const std::string& key, const ObjectValue& value) {
      ++visited;
      // Visit each logical object exactly once: at its primary replica.
      const auto replicas = ring_.ReplicasOfHash(Md5::Hash64(key));
      if (!replicas.empty() && replicas.front() == node->id()) {
        visitor(key, value);
      }
    });
    busiest = std::max(busiest, visited);
    total += visited;
  }
  meter.CountScanned(total);
  std::lock_guard lock(latency_mu_);
  const VirtualNanos elapsed =
      2 * latency_.profile().lan_hop +
      static_cast<VirtualNanos>(busiest) *
          latency_.profile().scan_per_object;
  meter.Charge(elapsed);
  clock_.Advance(elapsed);
}

std::uint64_t ObjectCloud::LogicalObjectCount() const {
  std::uint64_t count = 0;
  for (const auto& node : nodes_) {
    node->ForEach([&](const std::string& key, const ObjectValue&) {
      const auto replicas = ring_.ReplicasOfHash(Md5::Hash64(key));
      if (!replicas.empty() && replicas.front() == node->id()) ++count;
    });
  }
  return count;
}

std::uint64_t ObjectCloud::LogicalBytes() const {
  std::uint64_t bytes = 0;
  for (const auto& node : nodes_) {
    node->ForEach([&](const std::string& key, const ObjectValue& value) {
      const auto replicas = ring_.ReplicasOfHash(Md5::Hash64(key));
      if (!replicas.empty() && replicas.front() == node->id()) {
        bytes += value.logical_size;
      }
    });
  }
  return bytes;
}

std::uint64_t ObjectCloud::RawObjectCount() const {
  std::uint64_t count = 0;
  for (const auto& node : nodes_) count += node->object_count();
  return count;
}

std::vector<std::uint64_t> ObjectCloud::NodeObjectCounts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(nodes_.size());
  for (const auto& node : nodes_) counts.push_back(node->object_count());
  return counts;
}


ObjectCloud::MigrationReport ObjectCloud::RedistributeObjects() {
  MigrationReport report;
  // Snapshot every object (newest copy wins) and who currently holds it.
  struct Placement {
    ObjectValue value;
    std::vector<DeviceId> holders;
  };
  std::unordered_map<std::string, Placement> objects;
  for (const auto& node : nodes_) {
    node->ForEach([&](const std::string& key, const ObjectValue& value) {
      auto [it, inserted] = objects.try_emplace(key);
      if (inserted || value.modified > it->second.value.modified) {
        it->second.value = value;
      }
      it->second.holders.push_back(node->id());
    });
  }

  for (auto& [key, placement] : objects) {
    // A tombstone newer than the object on any replica means the object
    // was deleted; propagate the deletion instead of re-replicating.
    VirtualNanos tombstone = 0;
    for (const auto& node : nodes_) {
      tombstone = std::max(tombstone, node->TombstoneTime(key));
    }
    const auto owners = ring_.ReplicasOfHash(Md5::Hash64(key));
    if (tombstone >= placement.value.modified) {
      for (DeviceId holder : placement.holders) {
        if (nodes_[holder]->Delete(key, tombstone).ok()) {
          ++report.objects_dropped;
        }
      }
      continue;
    }
    for (DeviceId owner : owners) {
      if (std::find(placement.holders.begin(), placement.holders.end(),
                    owner) == placement.holders.end()) {
        if (nodes_[owner]->Put(key, placement.value).ok()) {
          ++report.objects_copied;
          report.bytes_copied += placement.value.logical_size;
        }
      }
    }
    for (DeviceId holder : placement.holders) {
      if (std::find(owners.begin(), owners.end(), holder) == owners.end()) {
        if (nodes_[holder]->Delete(key).ok()) ++report.objects_dropped;
      }
    }
  }
  return report;
}

Result<ObjectCloud::MigrationReport> ObjectCloud::AddStorageNode() {
  const auto id = static_cast<DeviceId>(nodes_.size());
  // Same round-robin zone assignment as the constructor, so scale-out
  // keeps replicas spread across failure domains.
  const auto zone = static_cast<std::uint32_t>(id % zone_count_);
  std::string name = "node-" + std::to_string(id);
  SplitMix64 seeder(0x9e3779b97f4a7c15ULL ^ id);
  nodes_.push_back(
      std::make_unique<StorageNode>(id, name, seeder.Next(), zone));
  H2_RETURN_IF_ERROR(
      ring_.AddDevice(RingDevice{id, std::move(name), 1.0, zone}));
  H2_RETURN_IF_ERROR(ring_.Rebalance());
  return RedistributeObjects();
}

Result<ObjectCloud::MigrationReport> ObjectCloud::DecommissionNode(
    DeviceId id) {
  H2_RETURN_IF_ERROR(ring_.RemoveDevice(id));
  H2_RETURN_IF_ERROR(ring_.Rebalance());
  MigrationReport report = RedistributeObjects();
  // The drained node must hold nothing afterwards.
  if (nodes_[id]->object_count() != 0) {
    return Status::Internal("decommissioned node still holds objects");
  }
  return report;
}

ObjectCloud::MigrationReport ObjectCloud::RepairReplicas() {
  return RedistributeObjects();
}

}  // namespace h2
