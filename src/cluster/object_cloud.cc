#include "cluster/object_cloud.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>

#include "hash/md5.h"

namespace h2 {

ObjectCloud::ObjectCloud(const CloudConfig& config)
    : ring_(config.part_power, config.replica_count),
      latency_(config.latency, config.seed),
      replica_count_(config.replica_count),
      zone_count_(std::max(config.zone_count, 1)),
      read_repair_(config.read_repair),
      hinted_handoff_(config.hinted_handoff),
      io_concurrency_(config.io_concurrency),
      backend_config_(config.backend),
      max_hints_per_node_(config.max_hints_per_node),
      max_rebalance_keys_per_step_(config.max_rebalance_keys_per_step) {
  assert(config.node_count >= 1);
  // Headroom for elastic membership: growing nodes_ must never reallocate
  // under readers that index it without the membership lock (direct
  // primitives, monitors).  Membership mutations beyond this reserve still
  // work but are only safe against pinned batches.
  nodes_.reserve(static_cast<std::size_t>(config.node_count) * 2 + 16);
  SplitMix64 seeder(config.seed);
  for (int i = 0; i < config.node_count; ++i) {
    const auto id = static_cast<DeviceId>(i);
    const auto zone = static_cast<std::uint32_t>(i % zone_count_);
    std::string name = "node-" + std::to_string(i);
    nodes_.push_back(std::make_unique<StorageNode>(
        id, name, seeder.Next(), zone, backend_config_, max_hints_per_node_));
    const Status st =
        ring_.AddDevice(RingDevice{id, std::move(name), 1.0, zone});
    assert(st.ok());
    (void)st;
  }
  const Status st = ring_.Rebalance();
  assert(st.ok());
  (void)st;
}

std::vector<StorageNode*> ObjectCloud::ReplicaNodes(
    const std::string& key, std::uint32_t reader_zone) const {
  const std::uint64_t hash = Md5::Hash64(key);
  std::vector<StorageNode*> out;
  for (DeviceId dev : ring_.ReplicasOfHash(hash)) {
    StorageNode* node = nodes_[dev].get();
    // With fewer devices than replica rows the ring repeats devices; a
    // node holds one copy regardless, and counting it twice would let a
    // single ack impersonate a quorum.
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  // Read affinity: same-zone replicas first, original order otherwise.
  std::stable_partition(out.begin(), out.end(),
                        [reader_zone](const StorageNode* n) {
                          return n->zone() == reader_zone;
                        });
  return out;
}

VirtualNanos ObjectCloud::ZoneSurcharge(const StorageNode& node,
                                        const OpMeter& meter) const {
  return node.zone() == meter.zone() ? 0
                                     : latency_.profile().inter_zone_hop;
}

SimClock& ObjectCloud::ClockFor(const OpMeter& meter) {
  SimClock* domain = meter.clock_domain();
  return domain != nullptr ? *domain : clock_;
}

VirtualNanos ObjectCloud::JitterFor(OpMeter& meter, VirtualNanos base) {
  if (Rng* stream = meter.jitter_stream()) {
    return latency_.JitterWith(*stream, base);
  }
  H2MutexLock lock(latency_mu_);
  return latency_.Jitter(base);
}

int ObjectCloud::EffectiveQuorum(std::size_t replica_set_size) const {
  return std::min(replica_count_ / 2 + 1,
                  static_cast<int>(replica_set_size));
}

/// One replica's answer to the freshness probe that precedes a read.
struct ObjectCloud::ReplicaProbe {
  StorageNode* node = nullptr;
  Result<ObjectHead> head = Status::Internal("unprobed");
  VirtualNanos tombstone = 0;
};

std::vector<ObjectCloud::ReplicaProbe> ObjectCloud::ProbeReplicas(
    const std::string& key, std::uint32_t reader_zone) {
  std::vector<ReplicaProbe> probes;
  for (StorageNode* node : ReplicaNodes(key, reader_zone)) {
    ReplicaProbe p;
    p.node = node;
    p.head = node->Head(key);
    if (p.head.code() != ErrorCode::kUnavailable) {
      p.tombstone = node->TombstoneTime(key);
    }
    probes.push_back(std::move(p));
  }
  return probes;
}

int ObjectCloud::PickNewest(const std::vector<ReplicaProbe>& probes) {
  VirtualNanos newest_tombstone = 0;
  for (const ReplicaProbe& p : probes) {
    newest_tombstone = std::max(newest_tombstone, p.tombstone);
  }
  // Winner: the newest live copy strictly newer than every tombstone;
  // ties broken by probe order (zone-affine, so the local replica wins).
  int winner = -1;
  VirtualNanos best = newest_tombstone;
  for (int i = 0; i < static_cast<int>(probes.size()); ++i) {
    if (probes[i].head.ok() && probes[i].head->modified > best) {
      best = probes[i].head->modified;
      winner = i;
    }
  }
  return winner;
}

Status ObjectCloud::Put(const std::string& key, ObjectValue value,
                        OpMeter& meter, PutOptions opts) {
  // Epoch pin: even a lone primitive routes against exactly one
  // membership epoch (AddStorageNode/RemoveStorageNode publish under the
  // exclusive side, so they wait for in-flight ops to drain).
  H2ReaderMutexLock membership(membership_mu_);
  return PutUnpinned(key, std::move(value), meter, opts);
}

Status ObjectCloud::PutUnpinned(const std::string& key, ObjectValue value,
                                OpMeter& meter, PutOptions opts) {
  if (PutFaultMatches(key)) {
    meter.CountFailed();
    {
      H2MutexLock lock(repair_mu_);
      ++repair_stats_.failed_puts;
    }
    return Status::Internal("injected put fault: " + key);
  }
  const std::uint64_t size = value.logical_size;
  const std::vector<StorageNode*> replicas = ReplicaNodes(key, meter.zone());
  const int quorum = EffectiveQuorum(replicas.size());
  SimClock& clock = ClockFor(meter);
  VirtualNanos base = JitterFor(meter, latency_.PutBase());
  if (opts.durable) base += latency_.profile().durable_commit;
  // Replication fans out in parallel; the farthest replica's ack
  // dominates when the quorum spans zones.
  VirtualNanos zone_extra = 0;
  int remote = 0;
  for (const StorageNode* node : replicas) {
    if (node->zone() != meter.zone()) ++remote;
  }
  if (static_cast<int>(replicas.size()) - remote < quorum) {
    zone_extra = latency_.profile().inter_zone_hop;
  }
  const VirtualNanos total = base + latency_.ByteCost(size) + zone_extra;
  meter.Charge(total);
  clock.Advance(total);
  meter.CountPut();
  meter.AddBytes(size);

  value.modified = clock.Tick();
  if (value.created == 0) value.created = value.modified;

  int acks = 0;
  StorageNode* hint_holder = nullptr;
  std::vector<StorageNode*> missed;
  Status last_error = Status::Internal("no replicas");
  for (StorageNode* node : replicas) {
    const Status st = node->Put(key, value);
    if (st.ok()) {
      ++acks;
      if (hint_holder == nullptr) hint_holder = node;
    } else {
      last_error = st;
      missed.push_back(node);
    }
  }
  // Durability comes from fsync-before-ack (charged above), not from
  // waiting for every replica: a majority quorum keeps writes available
  // through single-node failures, like Swift's write affinity.
  if (acks < quorum) {
    meter.CountFailed();
    H2MutexLock lock(repair_mu_);
    ++repair_stats_.failed_puts;
    return last_error;
  }
  if (hinted_handoff_ && hint_holder != nullptr && !missed.empty()) {
    QueueHints(key, value, /*tombstone=*/0, hint_holder, missed);
  }
  return Status::Ok();
}

Result<ObjectValue> ObjectCloud::Get(const std::string& key,
                                     OpMeter& meter) {
  H2ReaderMutexLock membership(membership_mu_);
  return GetUnpinned(key, meter);
}

Result<ObjectValue> ObjectCloud::GetUnpinned(const std::string& key,
                                             OpMeter& meter) {
  // Swift-style read, newest-wins: probe every replica's freshness digest
  // (a replica that answers 404 may simply have missed the write; one that
  // answers with an old copy may have missed an overwrite) and serve the
  // newest live copy that beats every observed tombstone.
  meter.CountGet();
  std::vector<ReplicaProbe> probes = ProbeReplicas(key, meter.zone());
  int winner = PickNewest(probes);

  Result<ObjectValue> value = Status::NotFound("no such object: " + key);
  while (winner >= 0) {
    Result<ObjectValue> r = probes[winner].node->Get(key);
    if (r.ok()) {
      value = std::move(r);
      break;
    }
    // The copy vanished between probe and fetch (injected fault or raced
    // delete): demote this replica and re-pick among the rest.
    probes[winner].head = r.status();
    winner = PickNewest(probes);
  }

  bool any_answer = false;
  for (const ReplicaProbe& p : probes) {
    if (p.head.code() != ErrorCode::kUnavailable) any_answer = true;
  }

  // Foreground pricing replicates the serial fall-through the figure
  // benches are calibrated against: replicas up to and including the
  // winner are on the request path; replicas past it are digest probes
  // the proxy fans out concurrently with the winning GET (HeadBase <=
  // GetBase, so they never extend the critical path) and are priced
  // out-of-band on the repair meter, un-jittered.
  const int fg_end =
      winner >= 0 ? winner : static_cast<int>(probes.size()) - 1;
  {
    VirtualNanos fg = 0;
    for (int i = 0; i <= fg_end; ++i) {
      const ReplicaProbe& p = probes[i];
      if (p.head.code() == ErrorCode::kUnavailable) {
        // Failed probe: one wasted round trip.  Advances the clock like
        // every other charge -- degraded reads must keep virtual time and
        // metered elapsed in lockstep.
        fg += JitterFor(meter, latency_.profile().lan_hop);
      } else if (i == winner) {
        fg += JitterFor(meter, latency_.GetBase()) +
              latency_.ByteCost(value->logical_size) +
              ZoneSurcharge(*p.node, meter);
      } else {
        fg += JitterFor(meter, latency_.HeadBase()) +
              ZoneSurcharge(*p.node, meter);
      }
    }
    meter.Charge(fg);
    ClockFor(meter).Advance(fg);
  }
  VirtualNanos bg = 0;
  for (std::size_t i = static_cast<std::size_t>(fg_end) + 1;
       i < probes.size(); ++i) {
    bg += probes[i].head.code() == ErrorCode::kUnavailable
              ? latency_.profile().lan_hop
              : latency_.HeadBase();
  }
  ChargeRepair(bg, /*advance_clock=*/false);

  if (read_repair_) {
    ReadRepair(key, probes, winner);
  }
  if (winner >= 0) {
    meter.AddBytes(value->logical_size);
    return value;
  }
  if (any_answer) {
    // Every reachable owner answered 404.  If the key is still queued
    // for rebalance the copy lives on its *previous* owners -- a publish
    // can reassign all replica rows of a partition at once -- so sweep
    // the fleet before declaring it gone (stale-free: newest-wins with
    // the same tombstone rule the migration itself applies).
    Result<ObjectValue> moved = RebalanceFallbackGet(key);
    if (moved.ok()) {
      meter.AddBytes(moved->logical_size);
      return moved;
    }
    return Status::NotFound("no such object: " + key);
  }
  return Status::Unavailable("no replica reachable for: " + key);
}

Result<ObjectValue> ObjectCloud::RebalanceFallbackGet(const std::string& key) {
  {
    H2MutexLock lock(rebalance_mu_);
    if (rebalance_pending_.find(key) == rebalance_pending_.end()) {
      return Status::NotFound("no such object: " + key);
    }
  }
  // Same newest-wins / tombstone-dominates walk as MigrateKey, read-only.
  ObjectValue newest;
  bool have_copy = false;
  VirtualNanos tombstone = 0;
  VirtualNanos cost = 0;
  for (const auto& node : nodes_) {
    cost += latency_.HeadBase();
    tombstone = std::max(tombstone, node->TombstoneTime(key));
    Result<ObjectValue> r = node->Get(key);
    if (!r.ok()) continue;
    if (!have_copy || r->modified > newest.modified) {
      newest = std::move(r).value();
      have_copy = true;
    }
  }
  if (!have_copy || tombstone >= newest.modified) {
    have_copy = false;
  } else {
    cost += latency_.ByteCost(newest.logical_size);
  }
  {
    H2MutexLock lock(rebalance_mu_);
    // Migration debt: un-jittered, never advances the foreground clock,
    // so NotFound pricing on the request path stays churn-independent.
    rebalance_meter_.Charge(cost);
  }
  if (!have_copy) return Status::NotFound("no such object: " + key);
  return newest;
}

Result<ObjectHead> ObjectCloud::Head(const std::string& key,
                                     OpMeter& meter) {
  H2ReaderMutexLock membership(membership_mu_);
  return HeadUnpinned(key, meter);
}

Result<ObjectHead> ObjectCloud::HeadUnpinned(const std::string& key,
                                             OpMeter& meter) {
  meter.CountHead();
  std::vector<ReplicaProbe> probes = ProbeReplicas(key, meter.zone());
  const int winner = PickNewest(probes);

  bool any_answer = false;
  for (const ReplicaProbe& p : probes) {
    if (p.head.code() != ErrorCode::kUnavailable) any_answer = true;
  }

  // Same pricing split as Get: serial fall-through up to the winner,
  // concurrent digest probes past it priced out-of-band.
  const int fg_end =
      winner >= 0 ? winner : static_cast<int>(probes.size()) - 1;
  {
    VirtualNanos fg = 0;
    for (int i = 0; i <= fg_end; ++i) {
      const ReplicaProbe& p = probes[i];
      if (p.head.code() == ErrorCode::kUnavailable) {
        fg += JitterFor(meter, latency_.profile().lan_hop);
      } else {
        fg += JitterFor(meter, latency_.HeadBase()) +
              ZoneSurcharge(*p.node, meter);
      }
    }
    meter.Charge(fg);
    ClockFor(meter).Advance(fg);
  }
  VirtualNanos bg = 0;
  for (std::size_t i = static_cast<std::size_t>(fg_end) + 1;
       i < probes.size(); ++i) {
    bg += probes[i].head.code() == ErrorCode::kUnavailable
              ? latency_.profile().lan_hop
              : latency_.HeadBase();
  }
  ChargeRepair(bg, /*advance_clock=*/false);

  if (read_repair_) {
    ReadRepair(key, probes, winner);
  }
  if (winner >= 0) return *probes[winner].head;
  if (any_answer) return Status::NotFound("no such object: " + key);
  return Status::Unavailable("no replica reachable for: " + key);
}

Status ObjectCloud::Delete(const std::string& key, OpMeter& meter) {
  H2ReaderMutexLock membership(membership_mu_);
  return DeleteUnpinned(key, meter);
}

Status ObjectCloud::DeleteUnpinned(const std::string& key, OpMeter& meter) {
  SimClock& clock = ClockFor(meter);
  const VirtualNanos total = JitterFor(meter, latency_.DeleteBase());
  meter.Charge(total);
  clock.Advance(total);
  meter.CountDelete();

  const VirtualNanos tombstone_ts = clock.Tick();
  const std::vector<StorageNode*> replicas = ReplicaNodes(key);
  int acks = 0;
  bool found = false;
  StorageNode* hint_holder = nullptr;
  std::vector<StorageNode*> missed;
  Status last_error = Status::Internal("no replicas");
  for (StorageNode* node : replicas) {
    // Timed node deletes now return Ok whether or not the replica held a
    // copy (the tombstone committed either way), so "did the object
    // exist" is probed separately for the cloud-level NotFound decision.
    const bool had_copy = node->Contains(key);
    const Status st = node->Delete(key, tombstone_ts);
    if (st.ok()) {
      ++acks;
      found |= had_copy;
      if (hint_holder == nullptr) hint_holder = node;
    } else if (st.code() == ErrorCode::kNotFound) {
      ++acks;  // already absent counts as success for idempotency
      if (hint_holder == nullptr) hint_holder = node;
    } else {
      last_error = st;
      missed.push_back(node);
    }
  }
  if (acks < EffectiveQuorum(replicas.size())) {
    meter.CountFailed();
    H2MutexLock lock(repair_mu_);
    ++repair_stats_.failed_deletes;
    return last_error;
  }
  if (hinted_handoff_ && hint_holder != nullptr && !missed.empty()) {
    // Replicas that missed the tombstone would otherwise resurrect the
    // object on a later read; park delete hints alongside put hints.
    QueueHints(key, ObjectValue{}, tombstone_ts, hint_holder, missed);
  }
  if (!found) return Status::NotFound("no such object: " + key);
  return Status::Ok();
}

Status ObjectCloud::Copy(const std::string& src, const std::string& dst,
                         OpMeter& meter) {
  H2ReaderMutexLock membership(membership_mu_);
  return CopyUnpinned(src, dst, meter);
}

Status ObjectCloud::CopyUnpinned(const std::string& src,
                                 const std::string& dst, OpMeter& meter) {
  meter.CountCopy();
  // Read the newest source copy (same newest-wins rule as Get: a replica
  // that missed the write must neither fail the copy nor feed it stale
  // bytes), then write to the destination replicas -- all inside the
  // cluster, pipelined (CopyBase); the proxy sees only control traffic.
  Result<ObjectValue> best = Status::Internal("no replicas");
  VirtualNanos newest_tombstone = 0;
  bool any_answer = false;
  for (StorageNode* node : ReplicaNodes(src)) {
    Result<ObjectValue> r = node->Get(src);
    if (r.code() == ErrorCode::kUnavailable) continue;
    any_answer = true;
    newest_tombstone =
        std::max(newest_tombstone, node->TombstoneTime(src));
    if (r.ok() && (!best.ok() || r->modified > best->modified)) {
      best = std::move(r);
    }
  }
  if (!best.ok() || best->modified <= newest_tombstone) {
    if (any_answer) return Status::NotFound("no such object: " + src);
    return Status::Unavailable("no replica reachable for: " + src);
  }
  ObjectValue value = std::move(best).value();
  SimClock& clock = ClockFor(meter);
  const VirtualNanos total = JitterFor(meter, latency_.CopyBase()) +
                             latency_.ByteCost(value.logical_size);
  meter.Charge(total);
  clock.Advance(total);
  meter.AddBytes(value.logical_size);
  value.modified = clock.Tick();
  value.created = value.modified;  // fresh object at the destination

  const std::vector<StorageNode*> dst_replicas = ReplicaNodes(dst);
  int acks = 0;
  StorageNode* hint_holder = nullptr;
  std::vector<StorageNode*> missed;
  Status write_error = Status::Internal("no replicas");
  for (StorageNode* dst_node : dst_replicas) {
    const Status st = dst_node->Put(dst, value);
    if (st.ok()) {
      ++acks;
      if (hint_holder == nullptr) hint_holder = dst_node;
    } else {
      write_error = st;
      missed.push_back(dst_node);
    }
  }
  if (acks < EffectiveQuorum(dst_replicas.size())) {
    meter.CountFailed();
    H2MutexLock lock(repair_mu_);
    ++repair_stats_.failed_copies;
    return write_error;
  }
  if (hinted_handoff_ && hint_holder != nullptr && !missed.empty()) {
    QueueHints(dst, value, /*tombstone=*/0, hint_holder, missed);
  }
  return Status::Ok();
}

bool ObjectCloud::Exists(const std::string& key, OpMeter& meter) {
  return Head(key, meter).ok();
}

// --- batched fan-out --------------------------------------------------------

std::uint64_t ObjectCloud::EffectiveConcurrency(
    std::uint64_t override_width) const {
  std::uint64_t w = override_width;
  if (w == 0) w = io_concurrency_;
  if (w == 0) w = latency_.profile().batch_width;
  return std::max<std::uint64_t>(w, 1);
}

DeviceId ObjectCloud::PrimaryDeviceOf(const std::string& key) const {
  const auto replicas = ring_.ReplicasOfHash(Md5::Hash64(key));
  return replicas.empty() ? DeviceId{0} : replicas.front();
}

std::vector<BatchResult> ObjectCloud::ExecuteBatch(std::vector<BatchOp> ops,
                                                   OpMeter& meter,
                                                   BatchOptions opts) {
  std::vector<BatchResult> results(ops.size());
  if (ops.empty()) return results;

  // Pin the batch to one membership epoch: a concurrent AddStorageNode /
  // RemoveStorageNode blocks on membership_mu_ until the wave drains, so
  // no op inside the batch can observe a half-applied topology (some ops
  // routed by the old ring, some by the new).
  H2ReaderMutexLock membership_pin(membership_mu_);
  const std::uint64_t pinned_epoch = ring_.epoch();

  // Execute sequentially through the ordinary primitives so node
  // mutations, clock ticks and jitter draws are identical at every W;
  // each op's serial cost is captured on a private sub-meter and becomes
  // one lane of the wave schedule.
  std::vector<OpMeter::BatchLane> lanes;
  lanes.reserve(ops.size());
  OpCost serial_total;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    BatchOp& op = ops[i];
    BatchResult& out = results[i];
    OpMeter sub;
    // The sub-meter carries the caller's full identity -- zone AND shard
    // execution context -- so a batch issued by a shard stays inside that
    // shard's clock domain and jitter stream.
    sub.InheritContext(meter);
    switch (op.kind) {
      case BatchOp::Kind::kPut:
        out.status = PutUnpinned(op.key, std::move(op.value), sub, op.put_opts);
        break;
      case BatchOp::Kind::kGet: {
        Result<ObjectValue> r = GetUnpinned(op.key, sub);
        out.status = r.status();
        if (r.ok()) out.value = std::move(r).value();
        break;
      }
      case BatchOp::Kind::kHead: {
        Result<ObjectHead> r = HeadUnpinned(op.key, sub);
        out.status = r.status();
        if (r.ok()) out.head = *r;
        break;
      }
      case BatchOp::Kind::kDelete:
        out.status = DeleteUnpinned(op.key, sub);
        break;
      case BatchOp::Kind::kCopy:
        out.status = CopyUnpinned(op.key, op.dst, sub);
        break;
    }
    OpMeter::BatchLane lane;
    lane.elapsed = sub.cost().elapsed;
    // The lane contends on the disk that serves it: the destination's
    // primary for a COPY (the write side), the key's primary otherwise.
    lane.queue = static_cast<std::uint32_t>(PrimaryDeviceOf(
        op.kind == BatchOp::Kind::kCopy ? op.dst : op.key));
    lanes.push_back(lane);
    serial_total += sub.cost();
  }

  // Counters and bytes merge additively; elapsed is re-priced at the
  // critical path of the wave schedule.
  OpCost counters = serial_total;
  counters.elapsed = 0;
  meter.Merge(counters);
  const std::uint64_t width = EffectiveConcurrency(opts.concurrency);
  const VirtualNanos critical = meter.ChargeCriticalPath(
      lanes, width, latency_.profile().disk_queue);
  {
    H2MutexLock lock(batch_mu_);
    ++batch_stats_.batches;
    batch_stats_.batched_ops += ops.size();
    batch_stats_.serial_cost += serial_total.elapsed;
    batch_stats_.critical_cost += critical;
    // Invariant check, not control flow: the shared lock above makes a
    // mid-batch epoch change impossible, so this stays 0.
    if (ring_.epoch() != pinned_epoch) ++batch_stats_.epoch_pin_violations;
  }
  return results;
}

ObjectCloud::BatchStats ObjectCloud::batch_stats() const {
  H2MutexLock lock(batch_mu_);
  return batch_stats_;
}

void ObjectCloud::Scan(const std::function<void(const std::string&,
                                                const ObjectValue&)>& visitor,
                       OpMeter& meter) {
  // The sweep walks nodes_, so it pins the membership epoch like every
  // other reader (a concurrent scale-out used to be able to grow the
  // vector mid-walk).
  H2ReaderMutexLock membership(membership_mu_);
  // Nodes scan concurrently; elapsed time is the busiest node's share.
  std::uint64_t busiest = 0;
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    std::uint64_t visited = 0;
    node->ForEach([&](const std::string& key, const ObjectValue& value) {
      ++visited;
      // Visit each logical object exactly once: at its primary replica.
      const auto replicas = ring_.ReplicasOfHash(Md5::Hash64(key));
      if (!replicas.empty() && replicas.front() == node->id()) {
        visitor(key, value);
      }
    });
    busiest = std::max(busiest, visited);
    total += visited;
  }
  meter.CountScanned(total);
  const VirtualNanos elapsed =
      2 * latency_.profile().lan_hop +
      static_cast<VirtualNanos>(busiest) *
          latency_.profile().scan_per_object;
  meter.Charge(elapsed);
  ClockFor(meter).Advance(elapsed);
}

std::uint64_t ObjectCloud::LogicalObjectCount() const {
  H2ReaderMutexLock membership(membership_mu_);
  std::uint64_t count = 0;
  for (const auto& node : nodes_) {
    node->ForEach([&](const std::string& key, const ObjectValue&) {
      const auto replicas = ring_.ReplicasOfHash(Md5::Hash64(key));
      if (!replicas.empty() && replicas.front() == node->id()) ++count;
    });
  }
  return count;
}

std::uint64_t ObjectCloud::LogicalBytes() const {
  H2ReaderMutexLock membership(membership_mu_);
  std::uint64_t bytes = 0;
  for (const auto& node : nodes_) {
    node->ForEach([&](const std::string& key, const ObjectValue& value) {
      const auto replicas = ring_.ReplicasOfHash(Md5::Hash64(key));
      if (!replicas.empty() && replicas.front() == node->id()) {
        bytes += value.logical_size;
      }
    });
  }
  return bytes;
}

std::uint64_t ObjectCloud::RawObjectCount() const {
  H2ReaderMutexLock membership(membership_mu_);
  std::uint64_t count = 0;
  for (const auto& node : nodes_) count += node->object_count();
  return count;
}

std::vector<std::uint64_t> ObjectCloud::NodeObjectCounts() const {
  H2ReaderMutexLock membership(membership_mu_);
  std::vector<std::uint64_t> counts;
  counts.reserve(nodes_.size());
  for (const auto& node : nodes_) counts.push_back(node->object_count());
  return counts;
}


ObjectCloud::MigrationReport ObjectCloud::RedistributeObjects() {
  // Eager migration is maintenance: it runs against a pinned topology
  // like the scrub and hint replay do.
  H2ReaderMutexLock membership(membership_mu_);
  MigrationReport report;
  // Snapshot every object (newest copy wins) and who currently holds it.
  struct Placement {
    ObjectValue value;
    std::vector<DeviceId> holders;
  };
  std::unordered_map<std::string, Placement> objects;
  for (const auto& node : nodes_) {
    node->ForEach([&](const std::string& key, const ObjectValue& value) {
      auto [it, inserted] = objects.try_emplace(key);
      if (inserted || value.modified > it->second.value.modified) {
        it->second.value = value;
      }
      it->second.holders.push_back(node->id());
    });
  }

  // Migrate in sorted key order: the PUT/DELETE sequence below mutates
  // node state and timestamps, so hash-table order would leave the
  // post-migration cluster dependent on container history.
  std::vector<const std::string*> sorted_keys;
  sorted_keys.reserve(objects.size());
  // h2lint: ordered -- key collection, sorted below
  for (const auto& [key, placement] : objects) sorted_keys.push_back(&key);
  std::sort(sorted_keys.begin(), sorted_keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* key_ptr : sorted_keys) {
    const std::string& key = *key_ptr;
    Placement& placement = objects.at(key);
    // A tombstone newer than the object on any replica means the object
    // was deleted; propagate the deletion instead of re-replicating.
    VirtualNanos tombstone = 0;
    for (const auto& node : nodes_) {
      tombstone = std::max(tombstone, node->TombstoneTime(key));
    }
    const auto owners = ring_.ReplicasOfHash(Md5::Hash64(key));
    if (tombstone >= placement.value.modified) {
      for (DeviceId holder : placement.holders) {
        if (nodes_[holder]->Delete(key, tombstone).ok()) {
          ++report.objects_dropped;
        }
      }
      continue;
    }
    for (DeviceId owner : owners) {
      if (std::find(placement.holders.begin(), placement.holders.end(),
                    owner) == placement.holders.end()) {
        if (nodes_[owner]->Put(key, placement.value).ok()) {
          ++report.objects_copied;
          report.bytes_copied += placement.value.logical_size;
        }
      }
    }
    for (DeviceId holder : placement.holders) {
      if (std::find(owners.begin(), owners.end(), holder) == owners.end()) {
        if (nodes_[holder]->Delete(key).ok()) ++report.objects_dropped;
      }
    }
  }
  return report;
}

// --- elastic membership -----------------------------------------------------

Result<DeviceId> ObjectCloud::StageAddNode(int zone_override, double weight) {
  DeviceId id = 0;
  {
    H2WriterMutexLock membership(membership_mu_);
    // The new id derives from nodes_.size(), so it must be read under the
    // exclusive side: two concurrent stages reading it unpinned would
    // mint the same device id.
    id = static_cast<DeviceId>(nodes_.size());
    // Same round-robin zone assignment as the constructor (unless
    // pinned), so scale-out keeps replicas spread across failure domains.
    const auto zone = zone_override >= 0
                          ? static_cast<std::uint32_t>(zone_override)
                          : static_cast<std::uint32_t>(id % zone_count_);
    std::string name = "node-" + std::to_string(id);
    SplitMix64 seeder(0x9e3779b97f4a7c15ULL ^ id);
    nodes_.push_back(std::make_unique<StorageNode>(
        id, name, seeder.Next(), zone, backend_config_, max_hints_per_node_));
    H2_RETURN_IF_ERROR(
        ring_.AddDevice(RingDevice{id, std::move(name), weight, zone}));
    H2_RETURN_IF_ERROR(ring_.Rebalance());
  }
  RebuildRebalanceQueue();
  return id;
}

Result<DeviceId> ObjectCloud::AddStorageNodeDeferred() {
  return StageAddNode(/*zone_override=*/-1, /*weight=*/1.0);
}

Status ObjectCloud::RemoveStorageNode(DeviceId id) {
  {
    H2WriterMutexLock membership(membership_mu_);
    if (ring_.active_device_count() <= 1) {
      return Status::InvalidArgument("cannot remove the last device");
    }
    H2_RETURN_IF_ERROR(ring_.RemoveDevice(id));
    H2_RETURN_IF_ERROR(ring_.Rebalance());
  }
  MigrateHints(id);
  RebuildRebalanceQueue();
  return Status::Ok();
}

Result<DeviceId> ObjectCloud::ReplaceStorageNode(DeviceId id) {
  DeviceId new_id = 0;
  {
    H2WriterMutexLock membership(membership_mu_);
    // Validate + capture the outgoing device's weight before staging the
    // replacement, so a NotFound leaves no orphan node behind.  Both the
    // capture and the new id read membership state, so the whole staging
    // runs under one exclusive acquisition (reading them unpinned raced
    // concurrent membership changes).
    double weight = 0.0;
    for (const RingDevice& dev : ring_.devices()) {
      if (dev.id == id && dev.active) weight = dev.weight;
    }
    if (weight <= 0.0) return Status::NotFound("no such active device");
    new_id = static_cast<DeviceId>(nodes_.size());
    const std::uint32_t zone = nodes_[id]->zone();  // inherit failure domain
    std::string name = "node-" + std::to_string(new_id);
    SplitMix64 seeder(0x9e3779b97f4a7c15ULL ^ new_id);
    nodes_.push_back(std::make_unique<StorageNode>(
        new_id, name, seeder.Next(), zone, backend_config_,
        max_hints_per_node_));
    H2_RETURN_IF_ERROR(ring_.ReplaceDevice(
        id, RingDevice{new_id, std::move(name), weight, zone}));
  }
  MigrateHints(id);
  RebuildRebalanceQueue();
  return new_id;
}

Status ObjectCloud::SetNodeWeight(DeviceId id, double weight) {
  {
    H2WriterMutexLock membership(membership_mu_);
    H2_RETURN_IF_ERROR(ring_.SetWeight(id, weight));
    H2_RETURN_IF_ERROR(ring_.Rebalance());
  }
  RebuildRebalanceQueue();
  return Status::Ok();
}

void ObjectCloud::RebuildRebalanceQueue() {
  H2ReaderMutexLock membership(membership_mu_);
  H2MutexLock lock(rebalance_mu_);
  rebalance_queue_.clear();
  rebalance_pending_.clear();
  // Sorted key -> holder set (std::map keeps the queue deterministic);
  // nodes_ is walked in DeviceId order so each holder list arrives sorted.
  std::map<std::string, std::vector<DeviceId>> holders;
  for (const auto& node : nodes_) {
    node->ForEach([&](const std::string& key, const ObjectValue&) {
      holders[key].push_back(node->id());
    });
  }
  VirtualNanos scan_cost = 0;
  for (auto& [key, holder_ids] : holders) {
    scan_cost += latency_.profile().scan_per_object;
    std::vector<DeviceId> owners = ring_.ReplicasOfHash(Md5::Hash64(key));
    std::sort(owners.begin(), owners.end());
    owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
    if (holder_ids != owners) {
      rebalance_queue_.push_back(key);
      rebalance_pending_.insert(key);
    }
  }
  rebalance_stats_.epoch = ring_.epoch();
  // The placement scan is background work on the rebalance meter; like
  // every rebalance charge it never advances the foreground clock.
  rebalance_meter_.Charge(scan_cost);
}

void ObjectCloud::MigrateKey(const std::string& key, RebalanceStats& stats,
                             std::vector<OpMeter::BatchLane>& lanes) {
  // Per-key slice of RedistributeObjects with identical semantics: the
  // newest reachable copy wins, a newer tombstone propagates instead of
  // re-replicating, and node-level Put/Delete preserve timestamps -- so a
  // drained queue leaves the same bytes as one eager migration, however
  // the keys were chunked into steps.
  ObjectValue newest;
  bool have_copy = false;
  VirtualNanos tombstone = 0;
  std::vector<DeviceId> holder_ids;
  for (const auto& node : nodes_) {
    tombstone = std::max(tombstone, node->TombstoneTime(key));
    Result<ObjectValue> r = node->Get(key);
    if (!r.ok()) continue;  // down / faulted nodes converge via scrub
    holder_ids.push_back(node->id());
    if (!have_copy || r->modified > newest.modified) {
      newest = std::move(r).value();
      have_copy = true;
    }
  }
  if (!have_copy) return;  // vanished or tombstone-only: nothing to move
  const auto owners = ring_.ReplicasOfHash(Md5::Hash64(key));
  if (tombstone >= newest.modified) {
    for (DeviceId holder : holder_ids) {
      if (nodes_[holder]->Delete(key, tombstone).ok()) {
        ++stats.objects_dropped;
        lanes.push_back(
            {latency_.RepairPushBase(), static_cast<std::uint32_t>(holder)});
      }
    }
    return;
  }
  for (DeviceId owner : owners) {
    if (std::find(holder_ids.begin(), holder_ids.end(), owner) ==
        holder_ids.end()) {
      // Conditional so a foreground write that raced ahead of this
      // migration step is never clobbered by the older snapshot; in a
      // serial drain the owner holds nothing and this always writes.
      if (nodes_[owner]->PutIfNewer(key, newest).ok()) {
        ++stats.objects_copied;
        stats.bytes_copied += newest.logical_size;
        lanes.push_back({latency_.RepairPushBase() +
                             latency_.ByteCost(newest.logical_size),
                         static_cast<std::uint32_t>(owner)});
      }
    }
  }
  for (DeviceId holder : holder_ids) {
    if (std::find(owners.begin(), owners.end(), holder) == owners.end()) {
      if (nodes_[holder]->Delete(key).ok()) {
        ++stats.objects_dropped;
        lanes.push_back(
            {latency_.RepairPushBase(), static_cast<std::uint32_t>(holder)});
      }
    }
  }
}

void ObjectCloud::MigrateHints(DeviceId removed) {
  H2ReaderMutexLock membership(membership_mu_);
  std::uint64_t migrated = 0;
  VirtualNanos cost = 0;
  for (const auto& holder : nodes_) {
    std::vector<ReplicaHint> orphaned = holder->TakeHints(
        [removed](DeviceId target) { return target == removed; });
    for (ReplicaHint& hint : orphaned) {
      // Retarget the parked write to the key's successor under the new
      // ring: prefer an owner that does not hold the key yet (that is the
      // slot the removed device vacated); if the holder is the only
      // owner, the write is already durable there and the hint drops.
      const auto owners = ring_.ReplicasOfHash(Md5::Hash64(hint.key));
      DeviceId successor = removed;
      bool found = false;
      for (DeviceId owner : owners) {
        if (owner == holder->id()) continue;
        if (!found) {
          successor = owner;
          found = true;
        }
        if (!nodes_[owner]->Contains(hint.key)) {
          successor = owner;
          break;
        }
      }
      ++migrated;
      cost += latency_.profile().lan_hop;  // local queue relabel + append
      if (!found) continue;
      hint.target = successor;
      (void)holder->QueueHint(std::move(hint));
    }
  }
  if (migrated != 0) {
    H2MutexLock lock(rebalance_mu_);
    rebalance_stats_.hints_migrated += migrated;
    rebalance_meter_.Charge(cost);
  }
}

std::size_t ObjectCloud::RunRebalanceStep(std::size_t max_keys) {
  H2ReaderMutexLock membership(membership_mu_);
  H2MutexLock lock(rebalance_mu_);
  if (rebalance_queue_.empty()) return 0;
  if (max_keys == 0) max_keys = max_rebalance_keys_per_step_;
  if (max_keys == 0) max_keys = rebalance_queue_.size();  // knob 0: drain
  std::vector<OpMeter::BatchLane> lanes;
  std::size_t processed = 0;
  while (processed < max_keys && !rebalance_queue_.empty()) {
    const std::string key = std::move(rebalance_queue_.front());
    rebalance_queue_.pop_front();
    rebalance_pending_.erase(key);
    MigrateKey(key, rebalance_stats_, lanes);
    ++processed;
  }
  ++rebalance_stats_.steps;
  rebalance_stats_.keys_moved += processed;
  // Un-jittered wave pricing on the dedicated meter.  The foreground
  // clock never advances for rebalance work, so the churn rate cannot
  // perturb foreground timestamps: the drained state is bit-identical at
  // every max_keys setting.
  if (!lanes.empty()) {
    (void)rebalance_meter_.ChargeCriticalPath(
        lanes, EffectiveConcurrency(), latency_.profile().disk_queue);
  }
  return processed;
}

ObjectCloud::MigrationReport ObjectCloud::DrainRebalance() {
  const RebalanceStats before = rebalance_stats();
  while (RunRebalanceStep(~std::size_t{0}) > 0) {
  }
  const RebalanceStats after = rebalance_stats();
  MigrationReport report;
  report.objects_copied = after.objects_copied - before.objects_copied;
  report.objects_dropped = after.objects_dropped - before.objects_dropped;
  report.bytes_copied = after.bytes_copied - before.bytes_copied;
  return report;
}

std::size_t ObjectCloud::RebalancePending() const {
  H2MutexLock lock(rebalance_mu_);
  return rebalance_queue_.size();
}

ObjectCloud::RebalanceStats ObjectCloud::rebalance_stats() const {
  H2MutexLock lock(rebalance_mu_);
  return rebalance_stats_;
}

OpCost ObjectCloud::rebalance_cost() const {
  H2MutexLock lock(rebalance_mu_);
  return rebalance_meter_.cost();
}

Result<ObjectCloud::MigrationReport> ObjectCloud::AddStorageNode() {
  // Eager legacy entry point: stage the membership change, then drain the
  // whole queue before returning (callers expect a converged cluster).
  H2_RETURN_IF_ERROR(AddStorageNodeDeferred().status());
  return DrainRebalance();
}

Result<ObjectCloud::MigrationReport> ObjectCloud::DecommissionNode(
    DeviceId id) {
  H2_RETURN_IF_ERROR(RemoveStorageNode(id));
  MigrationReport report = DrainRebalance();
  // The drained node must hold nothing afterwards (checked under the
  // epoch pin like every other nodes_ read).
  {
    H2ReaderMutexLock membership(membership_mu_);
    if (nodes_[id]->object_count() != 0) {
      return Status::Internal("decommissioned node still holds objects");
    }
  }
  return report;
}

ObjectCloud::MigrationReport ObjectCloud::RepairReplicas() {
  return RedistributeObjects();
}

// --- replica repair subsystem ----------------------------------------------

void ObjectCloud::ChargeRepair(VirtualNanos cost, bool advance_clock) {
  if (cost == 0) return;
  if (!advance_clock) {
    // Read-triggered charge: fires on nearly every GET/HEAD (the digest
    // probes past the winner).  A mutex here is a global serialization
    // point for the whole sharded read side, so the cost rides a relaxed
    // atomic instead; the sum is commutative, so the folded total in
    // repair_cost() is deterministic under any interleaving.
    // h2lint: mo(commutative cost sum; repair_cost folds the total)
    oob_repair_nanos_.fetch_add(cost, std::memory_order_relaxed);
    return;
  }
  {
    H2MutexLock lock(repair_mu_);
    repair_meter_.Charge(cost);
  }
  clock_.Advance(cost);
}

VirtualNanos ObjectCloud::ChargeRepairBatch(
    const std::vector<OpMeter::BatchLane>& lanes, bool advance_clock) {
  if (lanes.empty()) return 0;
  VirtualNanos critical = 0;
  {
    H2MutexLock lock(repair_mu_);
    critical = repair_meter_.ChargeCriticalPath(
        lanes, EffectiveConcurrency(), latency_.profile().disk_queue);
  }
  if (advance_clock) clock_.Advance(critical);
  return critical;
}

void ObjectCloud::QueueHints(const std::string& key, const ObjectValue& value,
                             VirtualNanos tombstone, StorageNode* holder,
                             const std::vector<StorageNode*>& missed) {
  VirtualNanos cost = 0;
  std::uint64_t queued = 0;
  for (StorageNode* target : missed) {
    ReplicaHint hint;
    hint.key = key;
    hint.tombstone = tombstone;
    if (tombstone == 0) hint.value = value;
    hint.target = target->id();
    if (holder->QueueHint(std::move(hint)).ok()) {
      ++queued;
      // The hint rides the holder's ack path; a local durable append.
      cost += latency_.profile().lan_hop;
    }
  }
  if (queued != 0) {
    H2MutexLock lock(repair_mu_);
    repair_stats_.hints_queued += queued;
  }
  ChargeRepair(cost, /*advance_clock=*/false);
}

void ObjectCloud::ReadRepair(const std::string& key,
                             const std::vector<ReplicaProbe>& probes,
                             int winner) {
  VirtualNanos cost = 0;
  std::uint64_t pushed = 0;
  if (winner >= 0) {
    const VirtualNanos newest_modified = probes[winner].head->modified;
    bool any_lagging = false;
    for (int i = 0; i < static_cast<int>(probes.size()); ++i) {
      if (i == winner) continue;
      const ReplicaProbe& p = probes[i];
      if (p.head.code() == ErrorCode::kUnavailable) continue;
      if (!p.head.ok() || p.head->modified < newest_modified) {
        any_lagging = true;
        break;
      }
    }
    if (!any_lagging) return;  // healthy read: nothing to push
    Result<ObjectValue> newest = probes[winner].node->Get(key);
    if (!newest.ok()) return;  // raced away; scrub will converge it
    for (int i = 0; i < static_cast<int>(probes.size()); ++i) {
      if (i == winner) continue;
      const ReplicaProbe& p = probes[i];
      // Unreachable replicas are hinted-handoff / anti-entropy territory.
      if (p.head.code() == ErrorCode::kUnavailable) continue;
      const bool lagging =
          !p.head.ok() || p.head->modified < newest->modified;
      if (!lagging) continue;
      if (p.node->PutIfNewer(key, *newest).ok()) {
        ++pushed;
        cost += latency_.RepairPushBase() +
                latency_.ByteCost(newest->logical_size);
      }
    }
  } else {
    // No live copy beats the tombstones: propagate the newest tombstone to
    // replicas still holding a superseded copy or missing the tombstone.
    VirtualNanos newest_tombstone = 0;
    for (const ReplicaProbe& p : probes) {
      newest_tombstone = std::max(newest_tombstone, p.tombstone);
    }
    if (newest_tombstone == 0) return;
    for (const ReplicaProbe& p : probes) {
      if (p.head.code() == ErrorCode::kUnavailable) continue;
      const bool lagging = p.head.ok() || p.tombstone < newest_tombstone;
      if (!lagging) continue;
      const Status st = p.node->Delete(key, newest_tombstone);
      if (st.ok() || st.code() == ErrorCode::kNotFound) {
        ++pushed;
        cost += latency_.RepairPushBase();
      }
    }
  }
  if (pushed != 0) {
    H2MutexLock lock(repair_mu_);
    repair_stats_.read_repairs_pushed += pushed;
  }
  // Read-triggered repair rides the foreground op's window: priced, but
  // no clock advance (see ChargeRepair).
  ChargeRepair(cost, /*advance_clock=*/false);
}

std::size_t ObjectCloud::ReplayHints() {
  // Maintenance runs against a stable topology (node set + ring epoch).
  H2ReaderMutexLock membership(membership_mu_);
  std::size_t delivered = 0;
  // Each delivered hint is one independent node-to-node push: a lane of a
  // repair batch, contending on the target node's disk, wave-priced on
  // the repair meter at the cloud's effective concurrency.
  std::vector<OpMeter::BatchLane> lanes;
  // Reachability snapshot taken before any hint queue is locked:
  // TakeHints holds the holder's mutex while the deliverable predicate
  // runs, so consulting the *target's* IsDown() inside it would acquire
  // node mutexes in holder->target order -- and opposite holder/target
  // pairs across concurrent callers are a classic lock-order inversion.
  std::vector<bool> reachable(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    reachable[i] = !nodes_[i]->IsDown();
  }
  for (std::size_t h = 0; h < nodes_.size(); ++h) {
    if (!reachable[h]) continue;
    StorageNode* holder = nodes_[h].get();
    std::vector<ReplicaHint> hints =
        holder->TakeHints([&reachable](DeviceId target) {
          return static_cast<std::size_t>(target) < reachable.size() &&
                 reachable[target];
        });
    for (ReplicaHint& hint : hints) {
      StorageNode* target = nodes_[hint.target].get();
      const Status st = hint.tombstone != 0
                            ? target->Delete(hint.key, hint.tombstone)
                            : target->PutIfNewer(hint.key, hint.value);
      if (st.ok() || st.code() == ErrorCode::kNotFound) {
        ++delivered;
        OpMeter::BatchLane lane;
        lane.elapsed = latency_.RepairPushBase() +
                       (hint.tombstone != 0
                            ? 0
                            : latency_.ByteCost(hint.value.logical_size));
        lane.queue = static_cast<std::uint32_t>(hint.target);
        lanes.push_back(lane);
      } else {
        // Transient fault on the target: park the hint again.
        (void)holder->QueueHint(std::move(hint));
      }
    }
  }
  if (delivered != 0) {
    H2MutexLock lock(repair_mu_);
    repair_stats_.hints_replayed += delivered;
  }
  // Maintenance-driven repair runs on its own timeline: advance the clock.
  ChargeRepairBatch(lanes, /*advance_clock=*/true);
  return delivered;
}

ObjectCloud::RepairReport ObjectCloud::ScrubInternal(bool repair) {
  // Maintenance runs against a stable topology (node set + ring epoch).
  H2ReaderMutexLock membership(membership_mu_);
  RepairReport report;
  // Deterministic sweep: sorted union of keys held by reachable nodes.
  std::set<std::string> keys;
  for (const auto& node : nodes_) {
    if (node->IsDown()) continue;
    node->ForEach(
        [&](const std::string& key, const ObjectValue&) { keys.insert(key); });
  }

  VirtualNanos cost = 0;  // digest-compare sweep (serial scan)
  // Repair pushes are independent node-to-node writes: batch lanes
  // contending on the lagging owner's disk, wave-priced like hint replay.
  std::vector<OpMeter::BatchLane> push_lanes;
  std::uint64_t pushed_copies = 0;
  std::uint64_t pushed_tombstones = 0;
  for (const std::string& key : keys) {
    ++report.keys_examined;
    struct OwnerState {
      StorageNode* node = nullptr;
      bool has_copy = false;
      VirtualNanos modified = 0;
      std::uint64_t digest = 0;
      VirtualNanos tombstone = 0;
    };
    std::vector<OwnerState> owners;
    Result<ObjectValue> newest = Status::NotFound("none");
    VirtualNanos newest_tombstone = 0;
    for (StorageNode* node : ReplicaNodes(key)) {
      if (node->IsDown()) continue;
      Result<ObjectValue> r = node->Get(key);
      // Injected transient fault: skip this replica this sweep.
      if (r.code() == ErrorCode::kUnavailable) continue;
      OwnerState owner;
      owner.node = node;
      owner.tombstone = node->TombstoneTime(key);
      newest_tombstone = std::max(newest_tombstone, owner.tombstone);
      if (r.ok()) {
        owner.has_copy = true;
        owner.modified = r->modified;
        owner.digest = Md5::Hash64(r->payload);
        if (!newest.ok() || r->modified > newest->modified) {
          newest = std::move(r);
        }
      }
      cost += latency_.profile().scan_per_object;  // digest compare
      owners.push_back(owner);
    }
    if (owners.empty()) continue;

    bool divergent = false;
    if (newest.ok() && newest->modified > newest_tombstone) {
      const std::uint64_t want = Md5::Hash64(newest->payload);
      for (const OwnerState& owner : owners) {
        const bool stale =
            !owner.has_copy || owner.modified < newest->modified;
        const bool corrupt = owner.has_copy &&
                             owner.modified == newest->modified &&
                             owner.digest != want;
        if (!stale && !corrupt) continue;
        divergent = true;
        if (!repair) continue;
        // LWW push for a lagging replica; a byte-divergent copy at the
        // same timestamp (disk corruption) needs an unconditional write.
        const Status st = corrupt ? owner.node->Put(key, *newest)
                                  : owner.node->PutIfNewer(key, *newest);
        if (st.ok()) {
          ++pushed_copies;
          push_lanes.push_back(
              {latency_.RepairPushBase() +
                   latency_.ByteCost(newest->logical_size),
               static_cast<std::uint32_t>(owner.node->id())});
        }
      }
    } else if (newest_tombstone > 0) {
      // Deleted: the tombstone supersedes every copy the owners hold.
      for (const OwnerState& owner : owners) {
        const bool lagging =
            owner.has_copy || owner.tombstone < newest_tombstone;
        if (!lagging) continue;
        divergent = true;
        if (!repair) continue;
        const Status st = owner.node->Delete(key, newest_tombstone);
        if (st.ok() || st.code() == ErrorCode::kNotFound) {
          ++pushed_tombstones;
          if (owner.has_copy) ++report.stale_copies_dropped;
          push_lanes.push_back(
              {latency_.RepairPushBase(),
               static_cast<std::uint32_t>(owner.node->id())});
        }
      }
    }
    if (divergent) ++report.divergent_keys;
  }
  report.copies_pushed = pushed_copies;
  report.tombstones_pushed = pushed_tombstones;
  if (repair) {
    {
      H2MutexLock lock(repair_mu_);
      repair_stats_.scrub_repairs_pushed +=
          pushed_copies + pushed_tombstones;
      repair_stats_.divergent_keys_found += report.divergent_keys;
    }
    ChargeRepair(cost, /*advance_clock=*/true);
    ChargeRepairBatch(push_lanes, /*advance_clock=*/true);
  }
  return report;
}

ObjectCloud::RepairReport ObjectCloud::ReplicaScrub() {
  return ScrubInternal(/*repair=*/true);
}

std::uint64_t ObjectCloud::DivergentKeyCount() {
  return ScrubInternal(/*repair=*/false).divergent_keys;
}

ObjectCloud::RepairStats ObjectCloud::repair_stats() const {
  H2MutexLock lock(repair_mu_);
  return repair_stats_;
}

OpCost ObjectCloud::repair_cost() const {
  OpCost cost;
  {
    H2MutexLock lock(repair_mu_);
    cost = repair_meter_.cost();
  }
  // h2lint: mo(commutative cost sum; no ordering with the meter needed)
  cost.elapsed += oob_repair_nanos_.load(std::memory_order_relaxed);
  return cost;
}

std::string ObjectCloud::DebugDump() const {
  H2ReaderMutexLock membership(membership_mu_);
  std::string out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out += "== node " + std::to_string(i) + " ==\n";
    nodes_[i]->ForEach([&](const std::string& key, const ObjectValue& v) {
      out += key;
      out += '|' + std::to_string(v.logical_size);
      out += '|' + std::to_string(v.created);
      out += '|' + std::to_string(v.modified);
      for (const auto& [mk, mv] : v.metadata) out += '|' + mk + '=' + mv;
      out += '|' + v.payload;
      out += '\n';
    });
  }
  return out;
}

}  // namespace h2
