// Pluggable per-node storage backends (ROADMAP item 2).
//
// A StorageNode used to *be* its two in-memory maps: a node crash lost
// every object silently and the repair subsystem papered over it.  The
// backend interface separates the node's replication semantics (LWW
// against tombstones, quorum membership, hinted handoff) from how the
// resulting state is *kept*:
//
//   * MemoryBackend        -- the original volatile maps; state dies with
//                             the process (or with StorageNode::Crash()).
//   * SegmentLogBackend    -- FawnKV-style log-structured store: every
//                             applied mutation is appended to an
//                             append-only segment log with an in-memory
//                             index; fsyncs are group-committed in
//                             batches of `group_commit_window` records,
//                             and recovery replays the durable prefix of
//                             the log to rebuild the index byte-for-byte.
//
// Contract: a backend is a passive state container with NO locking of its
// own.  StorageNode calls mutations under its exclusive lock and reads
// under its shared lock; pointers returned by Find() are valid only while
// that lock is held.  Backends never touch the simulation clock or the
// jitter stream -- durability accounting runs on a backend-private
// virtual-time OpMeter -- so backend choice can never perturb foreground
// timestamps or paper numbers (the differential suite pins this:
// in-memory and segment-log clouds must be bit-identical).
//
// LWW resolution stays in StorageNode: ApplyPut/ApplyDelete record
// *outcomes*, so log replay is a pure re-application in append order and
// needs no conflict reasoning beyond the tombstone max it shares with
// live application.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cluster/object.h"
#include "common/clock.h"
#include "common/status.h"

namespace h2 {

enum class BackendKind {
  kMemory,      // volatile in-memory maps (the historical behaviour)
  kSegmentLog,  // append-only segment log + in-memory index
};

/// Backend selection and group-commit knobs, embedded in CloudConfig
/// (and reachable from H2CloudConfig as `cfg.cloud.backend`).
struct BackendConfig {
  BackendKind kind = BackendKind::kMemory;

  /// Group-commit window for the segment log: how many appended records
  /// one fsync may cover.  0 = fsync every record before it is
  /// acknowledged (synchronous durability -- a crash loses nothing, and
  /// the differential suite holds bit-identically, which is why 0 is the
  /// default).  W > 0 batches up to W records per fsync: higher apply
  /// throughput, but a crash loses the un-fsynced tail (up to W - 1
  /// records), which the replica scrub then re-converges from peers.
  std::uint32_t group_commit_window = 0;

  /// Segment rotation threshold: a new segment is opened (after an
  /// fsync of the old one) once the active segment's encoded size
  /// exceeds this many bytes.
  std::uint64_t segment_max_bytes = 4ull << 20;

  /// Virtual-time cost of one fsync, charged to the backend's private
  /// durability meter (never a foreground OpMeter).  Calibrated to a
  /// 15K-RPM SAS synchronous write barrier.
  VirtualNanos fsync_cost = FromMillis(5.0);
};

/// Cumulative per-backend durability accounting, surfaced by h2/monitor
/// and bench/durability_sweep.
struct BackendStats {
  std::uint64_t puts_applied = 0;
  std::uint64_t deletes_applied = 0;
  std::uint64_t records_logged = 0;     // segment log only below here
  std::uint64_t appended_bytes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t segments = 0;
  std::uint64_t records_replayed = 0;   // by Recover(), lifetime total
  std::uint64_t records_lost = 0;       // volatile tail dropped by Crash()
  std::uint64_t torn_records_dropped = 0;  // checksum/framing failures
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  /// Virtual nanos of fsync cost accumulated on the durability meter.
  VirtualNanos fsync_nanos = 0;

  BackendStats& operator+=(const BackendStats& other) {
    puts_applied += other.puts_applied;
    deletes_applied += other.deletes_applied;
    records_logged += other.records_logged;
    appended_bytes += other.appended_bytes;
    fsyncs += other.fsyncs;
    segments += other.segments;
    records_replayed += other.records_replayed;
    records_lost += other.records_lost;
    torn_records_dropped += other.torn_records_dropped;
    crashes += other.crashes;
    recoveries += other.recoveries;
    fsync_nanos += other.fsync_nanos;
    return *this;
  }
};

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual const char* name() const = 0;

  // --- mutations (LWW already resolved by StorageNode) ---------------------
  /// Stores `value` under `key` and clears any tombstone for it.  The
  /// node only applies a put that beats the key's tombstone, so clearing
  /// unconditionally is the recorded outcome, not a policy decision.
  virtual void ApplyPut(const std::string& key, ObjectValue value) = 0;
  /// Removes the object.  `tombstone != 0` additionally raises the key's
  /// tombstone to max(existing, tombstone); 0 is an administrative erase
  /// that leaves tombstone state untouched.
  virtual void ApplyDelete(const std::string& key, VirtualNanos tombstone) = 0;

  // --- reads (under the node's shared lock) --------------------------------
  /// Stored object, or nullptr.  Valid only while the node lock is held.
  virtual const ObjectValue* Find(const std::string& key) const = 0;
  virtual bool Contains(const std::string& key) const = 0;
  /// Deletion timestamp if a tombstone exists for `key`, else 0.
  virtual VirtualNanos TombstoneTime(const std::string& key) const = 0;
  virtual std::uint64_t object_count() const = 0;
  virtual std::uint64_t logical_bytes() const = 0;
  /// Visits every (key, object) in ascending key order -- the iteration
  /// contract DebugDump and the scrub sweep depend on.
  virtual void ForEachSorted(
      const std::function<void(const std::string&, const ObjectValue&)>& fn)
      const = 0;

  // --- durability ----------------------------------------------------------
  /// Closes any open group-commit batch (an explicit fsync).  No-op for
  /// backends with nothing pending.
  virtual void Flush() = 0;
  /// Power loss: drops all volatile state.  The memory backend loses
  /// everything; the segment log keeps exactly the fsynced prefix of
  /// each segment and discards the index plus the un-fsynced tail.
  virtual void Crash() = 0;
  /// Restart after Crash(): rebuilds the in-memory index by replaying
  /// the durable segments in append order (tombstone LWW included).
  /// Fails with kCorruption only if a *durable* record fails to decode;
  /// torn trailing records are dropped and counted, not fatal.
  virtual Status Recover() = 0;

  virtual BackendStats stats() const = 0;
};

/// Factory behind CloudConfig::backend.
std::unique_ptr<StorageBackend> MakeStorageBackend(const BackendConfig& config);

}  // namespace h2
