#include "cluster/backend/storage_backend.h"

#include "cluster/backend/memory_backend.h"
#include "cluster/backend/segment_log_backend.h"

namespace h2 {

std::unique_ptr<StorageBackend> MakeStorageBackend(
    const BackendConfig& config) {
  switch (config.kind) {
    case BackendKind::kSegmentLog:
      return std::make_unique<SegmentLogBackend>(config);
    case BackendKind::kMemory:
      break;
  }
  return std::make_unique<MemoryBackend>();
}

}  // namespace h2
