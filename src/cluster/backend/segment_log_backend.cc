#include "cluster/backend/segment_log_backend.h"

#include <charconv>
#include <string_view>
#include <utility>

#include "codec/formatter.h"
#include "hash/fast_hash.h"

namespace h2 {
namespace {

constexpr std::string_view kPutTag = "P";
constexpr std::string_view kDeleteTag = "D";

bool ParseI64(std::string_view s, std::int64_t* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseU64(std::string_view s, std::uint64_t* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// Frames an encoded record line: checksum, space, line, newline.  The
/// codec layer escapes '\n' and '|' inside fields, so the line itself can
/// never collide with the framing.
std::string FrameRecord(const std::string& line) {
  std::string framed = std::to_string(XxHash64(line));
  framed += ' ';
  framed += line;
  framed += '\n';
  return framed;
}

}  // namespace

SegmentLogBackend::SegmentLogBackend(const BackendConfig& config)
    : config_(config) {}

void SegmentLogBackend::ApplyPut(const std::string& key, ObjectValue value) {
  std::vector<std::string> owned;
  owned.reserve(6 + 2 * value.metadata.size());
  owned.emplace_back(kPutTag);
  owned.push_back(key);
  owned.push_back(std::to_string(value.created));
  owned.push_back(std::to_string(value.modified));
  owned.push_back(std::to_string(value.logical_size));
  owned.push_back(value.payload);
  for (const auto& [mk, mv] : value.metadata) {
    owned.push_back(mk);
    owned.push_back(mv);
  }
  std::vector<std::string_view> fields(owned.begin(), owned.end());
  Append(FrameRecord(MakeTupleLine(fields)));

  tombstones_.erase(key);
  objects_[key] = std::move(value);
  ++stats_.puts_applied;
}

void SegmentLogBackend::ApplyDelete(const std::string& key,
                                    VirtualNanos tombstone) {
  const std::string ts = std::to_string(tombstone);
  Append(FrameRecord(MakeTupleLine({kDeleteTag, key, ts})));

  if (tombstone != 0) {
    auto [it, inserted] = tombstones_.try_emplace(key, tombstone);
    if (!inserted && tombstone > it->second) it->second = tombstone;
  }
  objects_.erase(key);
  ++stats_.deletes_applied;
}

const ObjectValue* SegmentLogBackend::Find(const std::string& key) const {
  auto it = objects_.find(key);
  return it == objects_.end() ? nullptr : &it->second;
}

bool SegmentLogBackend::Contains(const std::string& key) const {
  return objects_.contains(key);
}

VirtualNanos SegmentLogBackend::TombstoneTime(const std::string& key) const {
  auto it = tombstones_.find(key);
  return it == tombstones_.end() ? 0 : it->second;
}

std::uint64_t SegmentLogBackend::object_count() const {
  return objects_.size();
}

std::uint64_t SegmentLogBackend::logical_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [key, value] : objects_) total += value.logical_size;
  return total;
}

void SegmentLogBackend::ForEachSorted(
    const std::function<void(const std::string&, const ObjectValue&)>& fn)
    const {
  // The index is an ordered map: ascending key order for free.
  for (const auto& [key, value] : objects_) fn(key, value);
}

SegmentLogBackend::Segment& SegmentLogBackend::ActiveSegment() {
  if (segments_.empty()) segments_.emplace_back();
  if (segments_.back().bytes.size() >= config_.segment_max_bytes) {
    Fsync();  // rotation seals the outgoing segment durably first
    segments_.emplace_back();
  }
  return segments_.back();
}

void SegmentLogBackend::Append(std::string record) {
  Segment& seg = ActiveSegment();
  seg.bytes.append(record);
  stats_.appended_bytes += record.size();
  ++stats_.records_logged;
  ++pending_in_batch_;
  if (config_.group_commit_window == 0 ||
      pending_in_batch_ >= config_.group_commit_window) {
    Fsync();
  }
}

void SegmentLogBackend::Fsync() {
  if (pending_in_batch_ == 0) return;  // nothing new since the last barrier
  segments_.back().durable_bytes = segments_.back().bytes.size();
  pending_in_batch_ = 0;
  ++stats_.fsyncs;
  durability_meter_.Charge(config_.fsync_cost);
}

void SegmentLogBackend::Flush() {
  if (segments_.empty()) return;
  Fsync();
}

void SegmentLogBackend::Crash() {
  stats_.records_lost += pending_in_batch_;
  pending_in_batch_ = 0;
  for (Segment& seg : segments_) seg.bytes.resize(seg.durable_bytes);
  objects_.clear();
  tombstones_.clear();
  ++stats_.crashes;
}

Status SegmentLogBackend::ReplayRecord(const std::string& line) {
  Result<std::vector<std::string>> fields = ParseTupleLine(line);
  if (!fields.ok()) return fields.status();
  const std::vector<std::string>& f = *fields;
  if (f.size() >= 2 && f[0] == kPutTag) {
    // P|key|created|modified|logical_size|payload|[k|v]...
    if (f.size() < 6 || (f.size() - 6) % 2 != 0) {
      return Status::Corruption("malformed put record");
    }
    ObjectValue value;
    std::int64_t created = 0;
    std::int64_t modified = 0;
    if (!ParseI64(f[2], &created) || !ParseI64(f[3], &modified) ||
        !ParseU64(f[4], &value.logical_size)) {
      return Status::Corruption("unparseable put timestamps");
    }
    value.created = created;
    value.modified = modified;
    value.payload = f[5];
    for (std::size_t i = 6; i + 1 < f.size(); i += 2) {
      value.metadata[f[i]] = f[i + 1];
    }
    tombstones_.erase(f[1]);
    objects_[f[1]] = std::move(value);
    return Status::Ok();
  }
  if (f.size() == 3 && f[0] == kDeleteTag) {
    std::int64_t tombstone = 0;
    if (!ParseI64(f[2], &tombstone)) {
      return Status::Corruption("unparseable tombstone");
    }
    if (tombstone != 0) {
      auto [it, inserted] = tombstones_.try_emplace(f[1], tombstone);
      if (!inserted && tombstone > it->second) it->second = tombstone;
    }
    objects_.erase(f[1]);
    return Status::Ok();
  }
  return Status::Corruption("unknown record tag");
}

Status SegmentLogBackend::Recover() {
  objects_.clear();
  tombstones_.clear();
  ++stats_.recoveries;

  // Validates one framed record; returns the line when the checksum holds.
  const auto checksum_ok = [](std::string_view framed,
                              std::string_view* line_out) {
    const std::size_t space = framed.find(' ');
    if (space == std::string_view::npos) return false;
    std::uint64_t want = 0;
    if (!ParseU64(framed.substr(0, space), &want)) return false;
    const std::string_view line = framed.substr(space + 1);
    if (XxHash64(line) != want) return false;
    *line_out = line;
    return true;
  };

  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const std::string& bytes = segments_[s].bytes;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const std::size_t eol = bytes.find('\n', pos);
      std::string_view line;
      const bool framed_ok =
          eol != std::string::npos &&
          checksum_ok(std::string_view(bytes).substr(pos, eol - pos), &line);
      if (!framed_ok) {
        // A bad record at the very end of the log is a torn tail (the
        // only place an append-only log can tear); a bad record with
        // *valid* records after it -- in this segment or a later one --
        // is media corruption, which recovery must not paper over.
        std::size_t scan = eol == std::string::npos ? bytes.size() : eol + 1;
        while (scan < bytes.size()) {
          const std::size_t next = bytes.find('\n', scan);
          if (next == std::string::npos) break;
          std::string_view later;
          if (checksum_ok(std::string_view(bytes).substr(scan, next - scan),
                          &later)) {
            return Status::Corruption("corrupt record inside segment " +
                                      std::to_string(s));
          }
          scan = next + 1;
        }
        if (s + 1 < segments_.size()) {
          return Status::Corruption("torn record in sealed segment " +
                                    std::to_string(s));
        }
        ++stats_.torn_records_dropped;
        return Status::Ok();
      }
      H2_RETURN_IF_ERROR(ReplayRecord(std::string(line)));
      ++stats_.records_replayed;
      pos = eol + 1;
    }
  }
  return Status::Ok();
}

BackendStats SegmentLogBackend::stats() const {
  BackendStats out = stats_;
  out.segments = segments_.size();
  out.fsync_nanos = durability_meter_.cost().elapsed;
  return out;
}

void SegmentLogBackend::TearDurableTailForTest(std::size_t n) {
  if (segments_.empty()) return;
  Segment& seg = segments_.back();
  const std::size_t keep = seg.bytes.size() > n ? seg.bytes.size() - n : 0;
  seg.bytes.resize(keep);
  seg.durable_bytes = seg.bytes.size();
}

void SegmentLogBackend::CorruptByteForTest(std::size_t offset) {
  if (segments_.empty() || offset >= segments_.front().bytes.size()) return;
  segments_.front().bytes[offset] ^= 0x01;
}

}  // namespace h2
