#include "cluster/backend/memory_backend.h"

#include <algorithm>
#include <vector>

namespace h2 {

void MemoryBackend::ApplyPut(const std::string& key, ObjectValue value) {
  tombstones_.erase(key);
  objects_[key] = std::move(value);
  ++stats_.puts_applied;
}

void MemoryBackend::ApplyDelete(const std::string& key,
                                VirtualNanos tombstone) {
  if (tombstone != 0) {
    auto [it, inserted] = tombstones_.try_emplace(key, tombstone);
    if (!inserted && tombstone > it->second) it->second = tombstone;
  }
  objects_.erase(key);
  ++stats_.deletes_applied;
}

const ObjectValue* MemoryBackend::Find(const std::string& key) const {
  auto it = objects_.find(key);
  return it == objects_.end() ? nullptr : &it->second;
}

bool MemoryBackend::Contains(const std::string& key) const {
  return objects_.contains(key);
}

VirtualNanos MemoryBackend::TombstoneTime(const std::string& key) const {
  auto it = tombstones_.find(key);
  return it == tombstones_.end() ? 0 : it->second;
}

std::uint64_t MemoryBackend::object_count() const { return objects_.size(); }

std::uint64_t MemoryBackend::logical_bytes() const {
  std::uint64_t total = 0;
  // h2lint: ordered -- commutative sum
  for (const auto& [key, value] : objects_) total += value.logical_size;
  return total;
}

void MemoryBackend::ForEachSorted(
    const std::function<void(const std::string&, const ObjectValue&)>& fn)
    const {
  std::vector<const std::string*> keys;
  keys.reserve(objects_.size());
  // h2lint: ordered -- key collection, sorted below
  for (const auto& [key, value] : objects_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* key : keys) fn(*key, objects_.at(*key));
}

void MemoryBackend::Crash() {
  stats_.records_lost += objects_.size() + tombstones_.size();
  objects_.clear();
  tombstones_.clear();
  ++stats_.crashes;
}

}  // namespace h2
