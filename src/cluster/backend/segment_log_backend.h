// Append-only segment-log backend with an in-memory index (the FawnKV /
// log-structured-KV design direction of ROADMAP item 2).
//
// Every applied mutation is encoded as one checksummed record and
// appended to the active segment; the in-memory index (ordered maps, so
// ForEachSorted is a plain walk) is rebuilt from the log on recovery.
// Durability is group-committed: an fsync covers up to
// `group_commit_window` appended records (0 = fsync each record before
// it is acknowledged), and segments rotate -- after an fsync -- once the
// active segment exceeds `segment_max_bytes`.
//
// Crash() models power loss: the index is discarded and every segment is
// truncated to its fsync watermark, so exactly the group-commit tail
// (the un-fsynced records) is lost.  Recover() replays the surviving
// records in append order, re-applying the same tombstone-LWW outcomes
// the live path recorded; a checksum-invalid tail is dropped and counted
// as torn (append-only logs tear only at the end), while a bad record
// *followed by* valid ones is media corruption and fails recovery.
//
// Record format (one line per record, '\n'-framed; payloads and metadata
// are percent-escaped by the codec layer so they cannot break framing):
//   <xxhash64 of line> ' ' <line>
//   line := P|<key>|<created>|<modified>|<logical_size>|<payload>|[k|v]...
//         | D|<key>|<tombstone>
//
// Same no-locking contract as every StorageBackend: calls arrive under
// the owning StorageNode's lock.  The fsync cost is charged to a
// backend-private virtual-time OpMeter only -- never to a foreground
// meter and never to the simulation clock -- so group-commit tuning can
// never perturb the paper's serial numbers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cluster/backend/storage_backend.h"
#include "cluster/op_meter.h"

namespace h2 {

class SegmentLogBackend final : public StorageBackend {
 public:
  explicit SegmentLogBackend(const BackendConfig& config);

  const char* name() const override { return "segment-log"; }

  void ApplyPut(const std::string& key, ObjectValue value) override;
  void ApplyDelete(const std::string& key, VirtualNanos tombstone) override;

  const ObjectValue* Find(const std::string& key) const override;
  bool Contains(const std::string& key) const override;
  VirtualNanos TombstoneTime(const std::string& key) const override;
  std::uint64_t object_count() const override;
  std::uint64_t logical_bytes() const override;
  void ForEachSorted(
      const std::function<void(const std::string&, const ObjectValue&)>& fn)
      const override;

  void Flush() override;
  void Crash() override;
  Status Recover() override;

  BackendStats stats() const override;

  // --- test hooks ----------------------------------------------------------
  /// Chops `n` bytes off the active segment *without* moving its fsync
  /// watermark back: models a device that acknowledged an fsync but tore
  /// the final record (partial sector write).  Test-only.
  void TearDurableTailForTest(std::size_t n);
  /// Flips one byte at `offset` in the first segment: models media
  /// corruption in the durable interior of the log.  Test-only.
  void CorruptByteForTest(std::size_t offset);

 private:
  /// One log segment.  `bytes` is the encoded record stream; the prefix
  /// up to `durable_bytes` has been fsynced and survives Crash().
  struct Segment {
    std::string bytes;
    std::size_t durable_bytes = 0;
  };

  Segment& ActiveSegment();
  void Append(std::string record);
  void Fsync();
  /// Replays one decoded record line into the index.  `torn` is set when
  /// the record must be treated as a torn tail instead of corruption.
  Status ReplayRecord(const std::string& line);

  const BackendConfig config_;

  // In-memory index -- ordered so ForEachSorted needs no sort pass.
  std::map<std::string, ObjectValue> objects_;
  std::map<std::string, VirtualNanos> tombstones_;

  std::vector<Segment> segments_;
  std::uint32_t pending_in_batch_ = 0;  // records since the last fsync

  OpMeter durability_meter_;  // virtual-time fsync accounting, out-of-band
  BackendStats stats_;
};

}  // namespace h2
