// The original volatile in-memory backend: two hash maps, no durability.
// Crash() loses everything; Recover() restores nothing -- after a crash
// the node's state comes back only via replica repair (hinted handoff,
// read-repair, anti-entropy scrub) from its peers.
#pragma once

#include <string>
#include <unordered_map>

#include "cluster/backend/storage_backend.h"

namespace h2 {

class MemoryBackend final : public StorageBackend {
 public:
  const char* name() const override { return "memory"; }

  void ApplyPut(const std::string& key, ObjectValue value) override;
  void ApplyDelete(const std::string& key, VirtualNanos tombstone) override;

  const ObjectValue* Find(const std::string& key) const override;
  bool Contains(const std::string& key) const override;
  VirtualNanos TombstoneTime(const std::string& key) const override;
  std::uint64_t object_count() const override;
  std::uint64_t logical_bytes() const override;
  void ForEachSorted(
      const std::function<void(const std::string&, const ObjectValue&)>& fn)
      const override;

  void Flush() override {}  // nothing is ever durable
  void Crash() override;
  Status Recover() override { ++stats_.recoveries; return Status::Ok(); }

  BackendStats stats() const override { return stats_; }

 private:
  std::unordered_map<std::string, ObjectValue> objects_;
  std::unordered_map<std::string, VirtualNanos> tombstones_;
  BackendStats stats_;
};

}  // namespace h2
