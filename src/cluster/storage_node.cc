#include "cluster/storage_node.h"

#include <algorithm>
#include <shared_mutex>

namespace h2 {

Status StorageNode::CheckAvailable() const {
  if (down_.load(std::memory_order_acquire)) {
    return Status::Unavailable("node " + name_ + " is down");
  }
  // The fault RNG draws under its own leaf mutex: CheckAvailable runs on
  // the shared (read) side of mu_, where mutating the RNG state directly
  // would be a data race between concurrent readers.  With a zero error
  // rate the draw is skipped entirely, so healthy multi-threaded replays
  // never touch the stream (its draw order is schedule-dependent once
  // concurrent callers race it, which is why fault injection sits outside
  // the sharded engine's determinism contract).
  const double rate = error_rate_.load(std::memory_order_acquire);
  if (rate > 0.0) {
    std::lock_guard fault_lock(fault_mu_);
    if (fault_rng_.Chance(rate)) {
      return Status::Unavailable("node " + name_ + " injected fault");
    }
  }
  return Status::Ok();
}

Status StorageNode::Put(const std::string& key, ObjectValue value) {
  std::lock_guard lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  // Last-writer-wins against a tombstone: an older write arriving after a
  // newer delete must not resurrect the object.
  auto tomb = tombstones_.find(key);
  if (tomb != tombstones_.end()) {
    if (tomb->second >= value.modified) return Status::Ok();  // superseded
    tombstones_.erase(tomb);
  }
  auto [it, inserted] = objects_.try_emplace(key);
  if (!inserted) {
    value.created = it->second.created;  // preserve creation time
  }
  it->second = std::move(value);
  return Status::Ok();
}

Status StorageNode::PutIfNewer(const std::string& key, ObjectValue value) {
  std::lock_guard lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  auto tomb = tombstones_.find(key);
  if (tomb != tombstones_.end()) {
    if (tomb->second >= value.modified) return Status::Ok();  // superseded
    tombstones_.erase(tomb);
  }
  auto it = objects_.find(key);
  if (it != objects_.end() && it->second.modified >= value.modified) {
    return Status::Ok();  // incumbent is as new or newer
  }
  objects_[key] = std::move(value);
  return Status::Ok();
}

Result<ObjectValue> StorageNode::Get(const std::string& key) const {
  std::shared_lock lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + key);
  }
  return it->second;
}

Result<ObjectHead> StorageNode::Head(const std::string& key) const {
  std::shared_lock lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + key);
  }
  const ObjectValue& v = it->second;
  return ObjectHead{v.logical_size, v.metadata, v.created, v.modified};
}

Status StorageNode::Delete(const std::string& key, VirtualNanos ts) {
  std::lock_guard lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  if (ts != 0) {
    // Last-writer-wins against the stored copy: a timed tombstone older
    // than the incumbent (a replayed or repaired delete racing a newer
    // overwrite) must not erase it.  Untimed deletes (ts == 0) stay
    // unconditional -- they are administrative removals, not replicated
    // delete operations.
    auto obj = objects_.find(key);
    if (obj != objects_.end() && obj->second.modified > ts) {
      return Status::Ok();  // superseded by a newer write
    }
    auto [it, inserted] = tombstones_.try_emplace(key, ts);
    if (!inserted && ts > it->second) it->second = ts;
  }
  if (objects_.erase(key) == 0) {
    return Status::NotFound("no such object: " + key);
  }
  return Status::Ok();
}

VirtualNanos StorageNode::TombstoneTime(const std::string& key) const {
  std::shared_lock lock(mu_);
  auto it = tombstones_.find(key);
  return it == tombstones_.end() ? 0 : it->second;
}

bool StorageNode::Contains(const std::string& key) const {
  std::shared_lock lock(mu_);
  return objects_.contains(key);
}

void StorageNode::ForEach(
    const std::function<void(const std::string&, const ObjectValue&)>& fn)
    const {
  std::shared_lock lock(mu_);
  // Visit in sorted key order: ForEach feeds Scan, scrub sweeps and
  // migration, all of which charge virtual time per visit -- hash-table
  // order would make those charges depend on the container's history.
  std::vector<const std::string*> keys;
  keys.reserve(objects_.size());
  // h2lint: ordered -- key collection, sorted below
  for (const auto& [key, value] : objects_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* key : keys) fn(*key, objects_.at(*key));
}

std::uint64_t StorageNode::object_count() const {
  std::shared_lock lock(mu_);
  return objects_.size();
}

std::uint64_t StorageNode::logical_bytes() const {
  std::shared_lock lock(mu_);
  std::uint64_t total = 0;
  // h2lint: ordered -- commutative sum
  for (const auto& [key, value] : objects_) total += value.logical_size;
  return total;
}

Status StorageNode::QueueHint(ReplicaHint hint) {
  std::lock_guard lock(mu_);
  // Only a down holder refuses: queueing is a local append, not a request
  // that can be lost to the injected per-request error stream.
  if (down_.load(std::memory_order_acquire)) {
    return Status::Unavailable("node " + name_ + " is down");
  }
  hints_.push_back(std::move(hint));
  return Status::Ok();
}

std::vector<ReplicaHint> StorageNode::TakeHints(
    const std::function<bool(DeviceId)>& deliverable) {
  std::lock_guard lock(mu_);
  std::vector<ReplicaHint> taken;
  std::vector<ReplicaHint> kept;
  for (auto& hint : hints_) {
    (deliverable(hint.target) ? taken : kept).push_back(std::move(hint));
  }
  hints_ = std::move(kept);
  return taken;
}

std::size_t StorageNode::hint_count() const {
  std::shared_lock lock(mu_);
  return hints_.size();
}

void StorageNode::SetDown(bool down) {
  down_.store(down, std::memory_order_release);
}

bool StorageNode::IsDown() const {
  return down_.load(std::memory_order_acquire);
}

void StorageNode::SetErrorRate(double rate) {
  error_rate_.store(rate, std::memory_order_release);
}

}  // namespace h2
