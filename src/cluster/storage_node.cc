#include "cluster/storage_node.h"

#include <utility>

namespace h2 {

Status StorageNode::CheckAvailable() const REQUIRES_SHARED(mu_) {
  // h2lint: mo(acquire pairs with SetDown/Crash release so a down node's
  // last state is visible before requests start failing)
  if (down_.load(std::memory_order_acquire)) {
    return Status::Unavailable("node " + name_ + " is down");
  }
  // The fault RNG draws under its own leaf mutex: CheckAvailable runs on
  // the shared (read) side of mu_, where mutating the RNG state directly
  // would be a data race between concurrent readers.  With a zero error
  // rate the draw is skipped entirely, so healthy multi-threaded replays
  // never touch the stream (its draw order is schedule-dependent once
  // concurrent callers race it, which is why fault injection sits outside
  // the sharded engine's determinism contract).
  // h2lint: mo(acquire pairs with SetErrorRate release)
  const double rate = error_rate_.load(std::memory_order_acquire);
  if (rate > 0.0) {
    H2MutexLock fault_lock(fault_mu_);
    if (fault_rng_.Chance(rate)) {
      return Status::Unavailable("node " + name_ + " injected fault");
    }
  }
  return Status::Ok();
}

Status StorageNode::Put(const std::string& key, ObjectValue value) {
  H2WriterMutexLock lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  // Last-writer-wins against a tombstone: an older write arriving after a
  // newer delete must not resurrect the object.
  const VirtualNanos tomb = backend_->TombstoneTime(key);
  if (tomb != 0 && tomb >= value.modified) {
    return Status::Ok();  // superseded
  }
  if (const ObjectValue* existing = backend_->Find(key)) {
    value.created = existing->created;  // preserve creation time
  }
  backend_->ApplyPut(key, std::move(value));
  return Status::Ok();
}

Status StorageNode::PutIfNewer(const std::string& key, ObjectValue value) {
  H2WriterMutexLock lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  const VirtualNanos tomb = backend_->TombstoneTime(key);
  if (tomb != 0 && tomb >= value.modified) {
    return Status::Ok();  // superseded
  }
  const ObjectValue* existing = backend_->Find(key);
  if (existing != nullptr && existing->modified >= value.modified) {
    return Status::Ok();  // incumbent is as new or newer
  }
  backend_->ApplyPut(key, std::move(value));
  return Status::Ok();
}

Result<ObjectValue> StorageNode::Get(const std::string& key) const {
  H2ReaderMutexLock lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  const ObjectValue* value = backend_->Find(key);
  if (value == nullptr) {
    return Status::NotFound("no such object: " + key);
  }
  return *value;
}

Result<ObjectHead> StorageNode::Head(const std::string& key) const {
  H2ReaderMutexLock lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  const ObjectValue* value = backend_->Find(key);
  if (value == nullptr) {
    return Status::NotFound("no such object: " + key);
  }
  return ObjectHead{value->logical_size, value->metadata, value->created,
                    value->modified};
}

Status StorageNode::Delete(const std::string& key, VirtualNanos ts) {
  H2WriterMutexLock lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  const bool existed = backend_->Contains(key);
  if (ts != 0) {
    // Last-writer-wins against the stored copy: a timed tombstone older
    // than the incumbent (a replayed or repaired delete racing a newer
    // overwrite) must not erase it.  Untimed deletes (ts == 0) stay
    // unconditional -- they are administrative removals, not replicated
    // delete operations.
    if (const ObjectValue* existing = backend_->Find(key)) {
      if (existing->modified > ts) {
        return Status::Ok();  // superseded by a newer write
      }
    }
    backend_->ApplyDelete(key, ts);
    // The tombstone committed: a replica that never held the copy has
    // still durably applied the delete, so this is success, not NotFound
    // (see the header -- the old NotFound here broke repair accounting).
    return Status::Ok();
  }
  if (!existed) {
    return Status::NotFound("no such object: " + key);
  }
  backend_->ApplyDelete(key, 0);
  return Status::Ok();
}

VirtualNanos StorageNode::TombstoneTime(const std::string& key) const {
  H2ReaderMutexLock lock(mu_);
  return backend_->TombstoneTime(key);
}

bool StorageNode::Contains(const std::string& key) const {
  H2ReaderMutexLock lock(mu_);
  return backend_->Contains(key);
}

void StorageNode::ForEach(
    const std::function<void(const std::string&, const ObjectValue&)>& fn)
    const {
  H2ReaderMutexLock lock(mu_);
  // Sorted key order is the backend's ForEachSorted contract: ForEach
  // feeds Scan, scrub sweeps and migration, all of which charge virtual
  // time per visit -- hash-table order would make those charges depend on
  // the container's history.
  backend_->ForEachSorted(fn);
}

std::uint64_t StorageNode::object_count() const {
  H2ReaderMutexLock lock(mu_);
  return backend_->object_count();
}

std::uint64_t StorageNode::logical_bytes() const {
  H2ReaderMutexLock lock(mu_);
  return backend_->logical_bytes();
}

Status StorageNode::QueueHint(ReplicaHint hint) {
  H2WriterMutexLock lock(mu_);
  // Only a down holder refuses: queueing is a local append, not a request
  // that can be lost to the injected per-request error stream.
  // h2lint: mo(acquire pairs with SetDown/Crash release)
  if (down_.load(std::memory_order_acquire)) {
    return Status::Unavailable("node " + name_ + " is down");
  }
  if (hints_.size() >= max_hints_) {
    // h2lint: mo(monotonic counter; readers tolerate staleness)
    hint_overflows_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("node " + name_ + " hint queue full");
  }
  hints_.push_back(std::move(hint));
  return Status::Ok();
}

std::vector<ReplicaHint> StorageNode::TakeHints(
    const std::function<bool(DeviceId)>& deliverable) {
  H2WriterMutexLock lock(mu_);
  std::vector<ReplicaHint> taken;
  std::vector<ReplicaHint> kept;
  for (auto& hint : hints_) {
    (deliverable(hint.target) ? taken : kept).push_back(std::move(hint));
  }
  hints_ = std::move(kept);
  return taken;
}

std::size_t StorageNode::hint_count() const {
  H2ReaderMutexLock lock(mu_);
  return hints_.size();
}

void StorageNode::SetDown(bool down) {
  // h2lint: mo(release publishes the flip to CheckAvailable acquire loads)
  down_.store(down, std::memory_order_release);
}

bool StorageNode::IsDown() const {
  // h2lint: mo(acquire pairs with SetDown/Crash release)
  return down_.load(std::memory_order_acquire);
}

void StorageNode::SetErrorRate(double rate) {
  // h2lint: mo(release publishes the knob to CheckAvailable acquire loads)
  error_rate_.store(rate, std::memory_order_release);
}

void StorageNode::Crash() {
  H2WriterMutexLock lock(mu_);
  backend_->Crash();
  // Hints are volatile queue state on this node; power loss drops them
  // and convergence for their targets falls back to the scrub.
  hints_.clear();
  // h2lint: mo(release: volatile state is gone before the node reads down)
  down_.store(true, std::memory_order_release);
}

Status StorageNode::Restart() {
  H2WriterMutexLock lock(mu_);
  H2_RETURN_IF_ERROR(backend_->Recover());
  // h2lint: mo(release: recovered state is visible before the node is up)
  down_.store(false, std::memory_order_release);
  return Status::Ok();
}

void StorageNode::FlushBackend() {
  H2WriterMutexLock lock(mu_);
  backend_->Flush();
}

BackendStats StorageNode::backend_stats() const {
  H2ReaderMutexLock lock(mu_);
  return backend_->stats();
}

const char* StorageNode::backend_name() const {
  H2ReaderMutexLock lock(mu_);
  return backend_->name();
}

}  // namespace h2
