#include "cluster/storage_node.h"

namespace h2 {

Status StorageNode::CheckAvailable() const {
  if (down_) {
    return Status::Unavailable("node " + name_ + " is down");
  }
  if (error_rate_ > 0.0 && fault_rng_.Chance(error_rate_)) {
    return Status::Unavailable("node " + name_ + " injected fault");
  }
  return Status::Ok();
}

Status StorageNode::Put(const std::string& key, ObjectValue value) {
  std::lock_guard lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  // Last-writer-wins against a tombstone: an older write arriving after a
  // newer delete must not resurrect the object.
  auto tomb = tombstones_.find(key);
  if (tomb != tombstones_.end()) {
    if (tomb->second >= value.modified) return Status::Ok();  // superseded
    tombstones_.erase(tomb);
  }
  auto [it, inserted] = objects_.try_emplace(key);
  if (!inserted) {
    value.created = it->second.created;  // preserve creation time
  }
  it->second = std::move(value);
  return Status::Ok();
}

Result<ObjectValue> StorageNode::Get(const std::string& key) const {
  std::lock_guard lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + key);
  }
  return it->second;
}

Result<ObjectHead> StorageNode::Head(const std::string& key) const {
  std::lock_guard lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + key);
  }
  const ObjectValue& v = it->second;
  return ObjectHead{v.logical_size, v.metadata, v.created, v.modified};
}

Status StorageNode::Delete(const std::string& key, VirtualNanos ts) {
  std::lock_guard lock(mu_);
  H2_RETURN_IF_ERROR(CheckAvailable());
  if (ts != 0) {
    auto [it, inserted] = tombstones_.try_emplace(key, ts);
    if (!inserted && ts > it->second) it->second = ts;
  }
  if (objects_.erase(key) == 0) {
    return Status::NotFound("no such object: " + key);
  }
  return Status::Ok();
}

VirtualNanos StorageNode::TombstoneTime(const std::string& key) const {
  std::lock_guard lock(mu_);
  auto it = tombstones_.find(key);
  return it == tombstones_.end() ? 0 : it->second;
}

bool StorageNode::Contains(const std::string& key) const {
  std::lock_guard lock(mu_);
  return objects_.find(key) != objects_.end();
}

void StorageNode::ForEach(
    const std::function<void(const std::string&, const ObjectValue&)>& fn)
    const {
  std::lock_guard lock(mu_);
  for (const auto& [key, value] : objects_) fn(key, value);
}

std::uint64_t StorageNode::object_count() const {
  std::lock_guard lock(mu_);
  return objects_.size();
}

std::uint64_t StorageNode::logical_bytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, value] : objects_) total += value.logical_size;
  return total;
}

void StorageNode::SetDown(bool down) {
  std::lock_guard lock(mu_);
  down_ = down;
}

bool StorageNode::IsDown() const {
  std::lock_guard lock(mu_);
  return down_;
}

void StorageNode::SetErrorRate(double rate) {
  std::lock_guard lock(mu_);
  error_rate_ = rate;
}

}  // namespace h2
