#include "cluster/latency.h"

#include <algorithm>

namespace h2 {

LatencyProfile LatencyProfile::RackLan() { return LatencyProfile{}; }

LatencyProfile LatencyProfile::DropboxWan() {
  LatencyProfile p;
  // Dropbox's metadata service sits behind load balancers, an API tier and
  // the index-server fleet; the paper measures its metadata operations at
  // a roughly constant 80-200 ms regardless of n.  We keep the same
  // storage primitive costs and add the stack overhead.
  p.service_overhead = FromMillis(110.0);
  p.jitter_frac = 0.25;  // Fig. 13 shows visible fluctuation for Dropbox
  return p;
}

LatencyProfile LatencyProfile::ModernNvme() {
  LatencyProfile p;
  p.lan_hop = FromMillis(0.05);        // 25 GbE, kernel-bypass-ish
  p.per_kib_net = FromMillis(0.0004);
  p.proxy_cpu = FromMillis(0.2);
  p.disk_read = FromMillis(0.25);      // NVMe random read
  p.disk_write = FromMillis(0.35);
  p.per_kib_disk = FromMillis(0.0006);
  p.disk_queue = FromMillis(0.005);    // deep NVMe queues, no seek penalty
  p.durable_commit = FromMillis(2.0);  // NVMe fsync
  p.db_page = FromMillis(0.01);
  p.index_cpu = FromMillis(0.02);
  p.scan_per_object = FromMillis(0.002);
  return p;
}

VirtualNanos LatencyModel::Jitter(VirtualNanos base) {
  return JitterWith(rng_, base);
}

VirtualNanos LatencyModel::JitterWith(Rng& stream, VirtualNanos base) const {
  if (profile_.jitter_frac <= 0.0 || base <= 0) return base;
  const double f =
      1.0 + profile_.jitter_frac * (2.0 * stream.NextDouble() - 1.0);
  return static_cast<VirtualNanos>(static_cast<double>(base) * f);
}

VirtualNanos LatencyModel::ByteCost(std::uint64_t bytes) const {
  const std::uint64_t kib = (bytes + 1023) / 1024;
  return static_cast<VirtualNanos>(kib) *
         (profile_.per_kib_net + profile_.per_kib_disk);
}

VirtualNanos LatencyModel::SampleWanRtt() {
  // Triangular-ish: average of two uniforms over [min, max], centred near
  // the midpoint; clamp keeps the paper's observed range.
  const double u =
      (rng_.NextDouble() + rng_.NextDouble()) / 2.0;  // mean 0.5
  const double lo = static_cast<double>(profile_.wan_rtt_min);
  const double hi = static_cast<double>(profile_.wan_rtt_max);
  const double mean = static_cast<double>(profile_.wan_rtt_mean);
  // Shift so the expected value sits at the configured mean.
  const double raw = lo + u * (hi - lo);
  const double centred = raw + (mean - (lo + hi) / 2.0);
  return static_cast<VirtualNanos>(std::clamp(centred, lo, hi));
}

}  // namespace h2
