// Latency model for the simulated object storage cloud.
//
// The paper's testbed (§5.1): nine HP DL380p servers in one IDC rack,
// 1-Gbps LAN, 15K-RPM SAS disks, an OpenStack Swift proxy on Node-0 and
// eight storage nodes with 3-way replication.  We reproduce its *measured
// operation times* by charging per-primitive costs calibrated to the
// paper's absolute numbers (DESIGN.md §5):
//
//   * a proxied small-object GET ~ 10 ms   (Fig. 13: Swift file access)
//   * a server-side per-object COPY ~ 10 ms (COPY 1000 files ~ 10 s)
//   * a detailed-LIST per-child stat, 32-way batched ~ 0.3 ms
//     (LIST 1000 files ~ 0.35 s)
//   * Dropbox WAN RTT mean 58 ms, range 24-83 ms (§5.3)
//
// Jitter is deterministic (seeded), so every benchmark run reproduces the
// same series.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/rng.h"

namespace h2 {

struct LatencyProfile {
  // Network.
  VirtualNanos lan_hop = FromMillis(0.5);   // one request/response pair
  VirtualNanos per_kib_net = FromMillis(0.008);  // ~1 Gbps effective
  // Extra round trip to a replica in a different zone (0 on the paper's
  // single-rack deployment; set for multi-rack / geo rings).
  VirtualNanos inter_zone_hop = 0;

  // Proxy / middleware CPU per primitive.
  VirtualNanos proxy_cpu = FromMillis(1.0);

  // Storage node disk.
  VirtualNanos disk_read = FromMillis(8.0);    // 15K SAS seek + read
  VirtualNanos disk_write = FromMillis(9.0);
  VirtualNanos per_kib_disk = FromMillis(0.010);
  // Queueing surcharge per additional request parked behind the first on
  // one node's disk within a batch wave (ObjectCloud::ExecuteBatch).  The
  // elevator services a wave's requests for one device in a single sweep,
  // so queued requests pay transfer time, not a fresh seek.
  VirtualNanos disk_queue = FromMillis(0.1);

  // Durable metadata commit: a patch/journal write acknowledged by all
  // replicas with fsync (used by NameRing patch submission and the DP
  // index journal).
  VirtualNanos durable_commit = FromMillis(60.0);

  // File-path DB (Swift container DB model): B-tree page access.
  VirtualNanos db_page = FromMillis(0.05);

  // Index-server RPC processing (single-index / DP baselines).
  VirtualNanos index_cpu = FromMillis(0.05);

  // Full-scan enumeration cost per object (plain consistent hash).
  VirtualNanos scan_per_object = FromMillis(0.01);

  // Default client concurrency for one proxied operation's batched
  // sub-requests (the wave width W of ObjectCloud::ExecuteBatch);
  // CloudConfig::io_concurrency = 0 resolves to this.  Calibrated so the
  // detailed-LIST figures keep the paper's shape (DESIGN.md §5).
  std::uint64_t batch_width = 32;

  // Service overhead added per metadata operation; zero on the rack,
  // nonzero for the Dropbox profile (their opaque service stack).
  VirtualNanos service_overhead = 0;

  // WAN RTT distribution (client <-> cloud), *not* part of operation time;
  // used only by the RTT-impact analysis (bench/rtt_impact).
  VirtualNanos wan_rtt_min = FromMillis(24.0);
  VirtualNanos wan_rtt_mean = FromMillis(58.0);
  VirtualNanos wan_rtt_max = FromMillis(83.0);

  // Deterministic multiplicative jitter, +-fraction.
  double jitter_frac = 0.08;

  /// The rack deployment of §5.1 (H2Cloud and the Swift baseline).
  static LatencyProfile RackLan();

  /// Dropbox-flavoured profile: same primitive costs plus per-metadata-op
  /// service overhead, matching the constant ~80-200 ms the paper measures
  /// for Dropbox metadata operations.
  static LatencyProfile DropboxWan();

  /// A 2020s cluster: NVMe flash and 25 GbE.  Used by the calibration
  /// ablation to show the paper's comparative conclusions are shapes, not
  /// artifacts of 15K-RPM-disk constants.
  static LatencyProfile ModernNvme();
};

/// Applies deterministic jitter and derives composite primitive costs.
class LatencyModel {
 public:
  explicit LatencyModel(LatencyProfile profile, std::uint64_t seed = 42)
      : profile_(profile), rng_(seed) {}

  const LatencyProfile& profile() const { return profile_; }

  /// Jittered value of a base cost, drawn from the model's own stream.
  /// Callers must serialize access to the stream (ObjectCloud holds
  /// latency_mu_ around it).
  VirtualNanos Jitter(VirtualNanos base);

  /// Same jitter transform, drawn from an external stream.  The sharded
  /// engine passes each shard's private deterministic stream here, which
  /// needs no lock and keeps the draw sequence a function of the shard's
  /// own op order alone.
  VirtualNanos JitterWith(Rng& stream, VirtualNanos base) const;

  /// Cost of moving `bytes` over the LAN plus on/off disk.
  VirtualNanos ByteCost(std::uint64_t bytes) const;

  /// One WAN RTT sample in [min, max], centred on mean.
  VirtualNanos SampleWanRtt();

  // Composite primitive costs (pre-jitter bases).
  VirtualNanos GetBase() const {
    return 2 * profile_.lan_hop + profile_.proxy_cpu + profile_.disk_read;
  }
  VirtualNanos HeadBase() const {
    // A metadata probe still pays the row lookup's seek; calibrated so a
    // proxied HEAD ~= a small GET ~= 10 ms (Fig. 13, Swift file access).
    return 2 * profile_.lan_hop + profile_.proxy_cpu + profile_.disk_read;
  }
  VirtualNanos PutBase() const {
    // Quorum write: replicas written in parallel; elapsed tracks the
    // slowest of the quorum, folded into disk_write calibration.
    return 2 * profile_.lan_hop + profile_.proxy_cpu + profile_.disk_write;
  }
  VirtualNanos DeleteBase() const {
    // Tombstone write on the replicas.
    return 2 * profile_.lan_hop + profile_.proxy_cpu +
           profile_.disk_write / 2;
  }
  VirtualNanos CopyBase() const {
    // Server-side copy: read and write pipelined inside the cluster.
    return profile_.lan_hop + profile_.proxy_cpu +
           (profile_.disk_read + profile_.disk_write) / 2;
  }
  VirtualNanos RepairPushBase() const {
    // Background replica repair (read-repair push, hint replay,
    // anti-entropy copy): node-to-node, no proxy CPU in the loop.
    // Charged un-jittered to the cloud's repair meter so background
    // traffic never perturbs the foreground jitter stream the figure
    // benches are calibrated against.
    return profile_.lan_hop + profile_.disk_write;
  }

 private:
  LatencyProfile profile_;
  Rng rng_;
};

}  // namespace h2
