// The simulated object storage cloud: proxy + ring + replicated nodes.
//
// This is the substrate the whole repository runs on -- the stand-in for
// the paper's OpenStack Swift deployment (§5.1: one proxy, eight storage
// nodes, three replicas).  It exposes exactly the flat primitives the
// paper builds on: PUT, GET, DELETE, HEAD, plus server-side COPY and the
// full-cluster Scan that the plain consistent-hash baseline is forced to
// use for directory traversals.
//
// Every primitive charges calibrated latency and counters to the OpMeter
// the caller threads through (see cluster/latency.h, cluster/op_meter.h).
//
// Consistency/replication model: writes go to all R replicas and succeed
// when a majority quorum acks; reads probe the replicas in zone-affine
// ring order and return the newest non-superseded copy, so a replica that
// missed an overwrite can never shadow a newer copy later in ring order.
// Failure injection on individual nodes lets tests exercise quorum
// behaviour and H2Cloud's eventual-consistency story.
//
// Replicas that miss writes are healed by a three-part repair subsystem
// (Swift §5.1 semantics, see docs/PROTOCOL.md "Degraded-mode semantics"):
// hinted handoff (failed replica writes park a hint on a surviving
// replica, replayed by the maintenance loop once the target answers),
// read-repair (a read that observes missing/stale/tombstone-divergent
// replicas pushes the newest copy back), and an anti-entropy sweep
// (ReplicaScrub) that converges whole partitions by digest comparison.
// All repair traffic is metered out-of-band on the cloud's repair meter
// -- never on the caller's OpMeter and never through the jitter RNG -- so
// the figure benches' calibrated foreground numbers are unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "cluster/latency.h"
#include "cluster/object.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "cluster/op_meter.h"
#include "cluster/storage_node.h"
#include "common/clock.h"
#include "common/status.h"
#include "ring/partition_ring.h"

namespace h2 {

struct CloudConfig {
  int node_count = 8;        // storage nodes (paper: 8 + 1 proxy)
  int replica_count = 3;     // paper §5.1
  int part_power = 12;       // 4096 partitions; plenty for tests/benches
  /// Failure domains (racks / data centers).  Nodes are assigned zones
  /// round-robin; with zone_count >= replica_count the ring places every
  /// object's replicas in distinct zones, and reads prefer the replica in
  /// the caller's zone (OpMeter::SetZone), charging
  /// latency.inter_zone_hop otherwise.
  int zone_count = 1;
  LatencyProfile latency = LatencyProfile::RackLan();
  std::uint64_t seed = 42;
  /// Degraded-mode repair machinery (bench/degraded_mode ablates these).
  bool read_repair = true;
  bool hinted_handoff = true;
  /// Client-side concurrency for ExecuteBatch: how many sub-requests the
  /// proxy keeps in flight per wave.  0 resolves to the latency profile's
  /// batch_width, which is calibrated to the paper's detailed-LIST
  /// figures; bench/parallelism_sweep sweeps this knob.
  std::uint64_t io_concurrency = 0;
  /// Per-node storage backend: volatile in-memory maps (default) or the
  /// durable append-only segment log with group-commit fsync batching and
  /// crash-recovery replay (see cluster/backend/storage_backend.h).
  BackendConfig backend;
  /// Bound on each node's parked hinted-handoff queue; overflow degrades
  /// convergence to the anti-entropy scrub instead of growing without
  /// bound (surfaced as hint_overflow_count / monitor "overflowed").
  std::size_t max_hints_per_node = StorageNode::kDefaultMaxHints;
  /// Keys a single RunRebalanceStep migrates (the churn-rate knob): the
  /// maintenance loop drains the post-membership-change rebalance queue
  /// at most this fast, so foreground latency during churn is bounded by
  /// construction.  0 = unbounded (each step drains the whole queue).
  std::size_t max_rebalance_keys_per_step = 128;
};

struct PutOptions {
  /// Fsync-before-ack durability (used for NameRing patches and
  /// journals): charges the durable-commit latency on top of the normal
  /// majority-quorum write.
  bool durable = false;
};

/// One operation of a batched fan-out (ObjectCloud::ExecuteBatch): a
/// tagged union over the flat primitives.  `key` is the PUT/GET/HEAD/
/// DELETE target and the COPY source; `dst` is the COPY destination.
struct BatchOp {
  enum class Kind { kPut, kGet, kHead, kDelete, kCopy };

  Kind kind = Kind::kGet;
  std::string key;
  std::string dst;
  ObjectValue value;     // PUT payload
  PutOptions put_opts;   // PUT only

  static BatchOp Put(std::string key, ObjectValue value,
                     PutOptions opts = {}) {
    BatchOp op;
    op.kind = Kind::kPut;
    op.key = std::move(key);
    op.value = std::move(value);
    op.put_opts = opts;
    return op;
  }
  static BatchOp Get(std::string key) {
    BatchOp op;
    op.kind = Kind::kGet;
    op.key = std::move(key);
    return op;
  }
  static BatchOp Head(std::string key) {
    BatchOp op;
    op.kind = Kind::kHead;
    op.key = std::move(key);
    return op;
  }
  static BatchOp Delete(std::string key) {
    BatchOp op;
    op.kind = Kind::kDelete;
    op.key = std::move(key);
    return op;
  }
  static BatchOp Copy(std::string src, std::string dst) {
    BatchOp op;
    op.kind = Kind::kCopy;
    op.key = std::move(src);
    op.dst = std::move(dst);
    return op;
  }
};

/// Positional outcome of one BatchOp: `status` always set; `value` on a
/// successful GET, `head` on a successful HEAD.
struct BatchResult {
  Status status = Status::Ok();
  std::optional<ObjectValue> value;
  std::optional<ObjectHead> head;

  bool ok() const { return status.ok(); }
};

struct BatchOptions {
  /// Wave-width override for this batch; 0 resolves to
  /// CloudConfig::io_concurrency (which itself defaults to the latency
  /// profile's batch_width).
  std::uint64_t concurrency = 0;
};

class ObjectCloud {
 public:
  explicit ObjectCloud(const CloudConfig& config);

  ObjectCloud(const ObjectCloud&) = delete;
  ObjectCloud& operator=(const ObjectCloud&) = delete;

  // --- flat object primitives (the paper's PUT/GET/DELETE "and other") ---
  // Each primitive pins the membership epoch for its whole duration (the
  // shared side of membership_mu_, like ExecuteBatch does per batch): a
  // concurrent Add/Remove/ReplaceStorageNode publishes only after every
  // in-flight op drains, so no op ever routes half-old, half-new.
  Status Put(const std::string& key, ObjectValue value, OpMeter& meter,
             PutOptions opts = {}) EXCLUDES(membership_mu_);
  Result<ObjectValue> Get(const std::string& key, OpMeter& meter)
      EXCLUDES(membership_mu_);
  Result<ObjectHead> Head(const std::string& key, OpMeter& meter)
      EXCLUDES(membership_mu_);
  Status Delete(const std::string& key, OpMeter& meter)
      EXCLUDES(membership_mu_);
  /// Server-side copy; the payload never crosses the proxy.
  Status Copy(const std::string& src, const std::string& dst,
              OpMeter& meter) EXCLUDES(membership_mu_);
  /// Metadata existence probe (a HEAD that tolerates NotFound).
  bool Exists(const std::string& key, OpMeter& meter);

  // --- batched fan-out ----------------------------------------------------
  /// Executes a batch of independent operations and prices it as a
  /// pipelined client: ops are scheduled, in submission order, into waves
  /// of W = BatchOptions::concurrency (0 -> CloudConfig::io_concurrency
  /// -> latency profile batch_width); each wave is charged at the maximum
  /// of its lanes' serial costs -- the critical path -- with lanes that
  /// share a primary storage node serializing behind each other at
  /// disk_queue per queued request.
  ///
  /// Execution itself is sequential and deterministic: node mutations,
  /// clock ticks and jitter draws are identical for every W, so the final
  /// cloud state is bit-identical across concurrency settings; W affects
  /// only the price charged to `meter`.  (The clock still advances by each
  /// sub-op's serial window, as the primitives do; only the caller-visible
  /// elapsed is wave-priced.)  W = 1 reproduces the serial sum exactly.
  ///
  /// Results are positional: results[i] is ops[i]'s outcome, so callers
  /// keep exact per-item error handling.
  [[nodiscard]] std::vector<BatchResult> ExecuteBatch(std::vector<BatchOp> ops,
                                                      OpMeter& meter,
                                                      BatchOptions opts = {})
      EXCLUDES(membership_mu_);

  /// Effective wave width after the defaulting rules above.
  std::uint64_t EffectiveConcurrency(std::uint64_t override_width = 0) const;

  /// Primary storage device for a key: the serialization domain batched
  /// lanes contend on.
  DeviceId PrimaryDeviceOf(const std::string& key) const;

  /// Cumulative ExecuteBatch accounting (foreground batches; repair-path
  /// batching shows up in repair_cost()'s own batch counters).
  struct BatchStats {
    std::uint64_t batches = 0;
    std::uint64_t batched_ops = 0;
    VirtualNanos serial_cost = 0;    // what a serial client would have paid
    VirtualNanos critical_cost = 0;  // what wave scheduling charged
    /// Batches that observed a ring-epoch change mid-flight.  Membership
    /// publishes take membership_mu_ exclusively while every batch holds
    /// it shared, so this must stay 0 -- the invariant the batch_io
    /// regression test pins.
    std::uint64_t epoch_pin_violations = 0;
    double mean_width() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(batched_ops) /
                                static_cast<double>(batches);
    }
    double savings() const {
      if (serial_cost == 0) return 0.0;
      const double ratio = static_cast<double>(critical_cost) /
                           static_cast<double>(serial_cost);
      return ratio >= 1.0 ? 0.0 : 1.0 - ratio;
    }
  };
  BatchStats batch_stats() const EXCLUDES(batch_mu_);

  /// Enumerates every *primary* object in the cluster (each logical object
  /// once).  Nodes scan in parallel; the meter is charged for the busiest
  /// node.  This is the only way a flat cloud can answer "which objects
  /// are under directory X?" without an index -- the O(N) the paper's
  /// Table 1 assigns to plain Consistent Hash.
  void Scan(const std::function<void(const std::string&,
                                     const ObjectValue&)>& visitor,
            OpMeter& meter) EXCLUDES(membership_mu_);

  // --- cluster-wide accounting (Fig. 14 / Fig. 15) -----------------------
  /// Logical (deduplicated) object count, i.e. replicas counted once.
  std::uint64_t LogicalObjectCount() const EXCLUDES(membership_mu_);
  /// Logical bytes, replicas counted once.
  std::uint64_t LogicalBytes() const EXCLUDES(membership_mu_);
  /// Raw stored copies across all nodes (= logical * replication when all
  /// nodes are healthy).
  std::uint64_t RawObjectCount() const EXCLUDES(membership_mu_);

  // --- cluster administration ----------------------------------------------
  // The elasticity story the paper leans on ("re-take advantage of the
  // object storage cloud to automatically provide high reliability and
  // scalability"): grow or shrink the ring and move only the partitions
  // whose ownership changed, or heal replication after a node loss.
  //
  // Membership changes are safe under load: each one publishes the new
  // ring under membership_mu_ held exclusively, while every ExecuteBatch
  // pins the epoch by holding it shared -- an in-flight batch never
  // observes a topology flip mid-wave.  Concurrent membership *mutations*
  // against each other are still externally serialized (one admin), as
  // Swift ring deployments are.
  //
  // Data movement is decoupled from the ring publish: a membership change
  // enqueues the affected keys on a deterministic (sorted) rebalance
  // queue, drained by RunRebalanceStep at most max_rebalance_keys_per_step
  // keys at a time.  Migration preserves object timestamps (node-level
  // Put/Delete, no clock ticks, no jitter), and its cost lands on a
  // dedicated rebalance OpMeter -- same out-of-band pattern as the repair
  // meter -- so the final cloud state is bit-identical across every
  // rebalance-rate setting and foreground latency during churn is bounded
  // by the configured rate.  The eager entry points (AddStorageNode /
  // DecommissionNode) stage the change and drain the queue to completion
  // before returning.

  struct MigrationReport {
    std::uint64_t objects_copied = 0;   // new replica placements written
    std::uint64_t objects_dropped = 0;  // stale replicas removed
    std::uint64_t bytes_copied = 0;
    double moved_fraction() const {
      const std::uint64_t total = objects_copied + objects_dropped;
      return total == 0 ? 0.0 : static_cast<double>(objects_copied) / total;
    }
  };

  /// Adds a storage node, rebalances the ring, migrates affected
  /// partitions.  Consistent hashing bounds the movement to ~1/(n+1) of
  /// the data.
  Result<MigrationReport> AddStorageNode();
  /// Removes a node from the ring and drains its data to the new owners.
  Result<MigrationReport> DecommissionNode(DeviceId id);
  /// Anti-entropy pass: re-replicates under-replicated objects (e.g.
  /// after a node lost its disk) and drops replicas from nodes that no
  /// longer own them.  Swift calls this the replicator.
  MigrationReport RepairReplicas();

  // --- elastic membership (bounded-rate, under load) -----------------------

  /// Adds a storage node and publishes the new ring but does NOT migrate
  /// data: affected keys go on the rebalance queue for RunRebalanceStep.
  /// Returns the new node's device id.
  Result<DeviceId> AddStorageNodeDeferred() EXCLUDES(membership_mu_);
  /// Removes a node from the ring (it may be down or already gone).  Hints
  /// parked anywhere *for* the removed node are retargeted to the key's
  /// successor owners instead of leaking; the node's data drains via the
  /// rebalance queue.
  Status RemoveStorageNode(DeviceId id) EXCLUDES(membership_mu_);
  /// Swaps a (typically failed) node for a fresh one that inherits its
  /// ring slots, weight and zone -- minimal movement: only the old node's
  /// own share re-replicates, nothing reshuffles among survivors.
  /// Returns the replacement's device id.
  Result<DeviceId> ReplaceStorageNode(DeviceId id)
      EXCLUDES(membership_mu_);
  /// Changes a node's ring weight; the proportional share of partitions
  /// moves via the rebalance queue.
  Status SetNodeWeight(DeviceId id, double weight)
      EXCLUDES(membership_mu_);

  /// Current membership epoch (the ring's published-table generation);
  /// gossiped to middlewares so their resolve caches flush on topology
  /// change.
  std::uint64_t membership_epoch() const { return ring_.epoch(); }

  /// Migrates up to `max_keys` queued keys to their current ring owners
  /// (0 = CloudConfig::max_rebalance_keys_per_step; that knob at 0 means
  /// drain fully).  Returns keys processed -- a maintenance work count.
  /// Deterministic: keys move in sorted order, timestamps preserved, cost
  /// charged un-jittered to the rebalance meter without advancing the
  /// foreground clock, so churn rate can never perturb foreground state.
  std::size_t RunRebalanceStep(std::size_t max_keys = 0)
      EXCLUDES(membership_mu_, rebalance_mu_);
  /// Keys still awaiting migration after a membership change.
  std::size_t RebalancePending() const EXCLUDES(rebalance_mu_);

  /// Cumulative rebalance accounting, surfaced by h2/monitor.
  struct RebalanceStats {
    std::uint64_t epoch = 0;        // ring epoch the queue was built for
    std::uint64_t steps = 0;        // RunRebalanceStep calls that did work
    std::uint64_t keys_moved = 0;   // queue entries processed
    std::uint64_t objects_copied = 0;
    std::uint64_t objects_dropped = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t hints_migrated = 0;  // retargeted off removed nodes
  };
  RebalanceStats rebalance_stats() const EXCLUDES(rebalance_mu_);
  /// Background rebalance traffic priced so far (out-of-band; foreground
  /// OpMeters never include it).
  OpCost rebalance_cost() const EXCLUDES(rebalance_mu_);

  // --- replica repair (degraded-mode convergence) --------------------------
  // Metered in virtual time on the cloud's background repair meter; see
  // docs/PROTOCOL.md "Degraded-mode semantics".

  /// Cumulative repair-subsystem counters, surfaced by h2/monitor.
  struct RepairStats {
    std::uint64_t hints_queued = 0;
    std::uint64_t hints_replayed = 0;
    std::uint64_t read_repairs_pushed = 0;
    std::uint64_t scrub_repairs_pushed = 0;
    std::uint64_t divergent_keys_found = 0;
    std::uint64_t failed_puts = 0;
    std::uint64_t failed_deletes = 0;
    std::uint64_t failed_copies = 0;
  };

  /// One anti-entropy sweep's outcome.
  struct RepairReport {
    std::uint64_t keys_examined = 0;
    std::uint64_t divergent_keys = 0;
    std::uint64_t copies_pushed = 0;
    std::uint64_t tombstones_pushed = 0;
    std::uint64_t stale_copies_dropped = 0;
  };

  /// Replays parked hints whose holder and target are both reachable.
  /// Returns hints delivered (a maintenance work count: zero once
  /// drained, so quiescence loops terminate while targets stay down).
  std::size_t ReplayHints() EXCLUDES(membership_mu_, repair_mu_);
  /// One deterministic repair step for the maintenance loop (hint
  /// replay today; anti-entropy sweeps stay an explicit call because
  /// they walk every partition).
  std::size_t RunRepairStep() { return ReplayHints(); }
  /// Anti-entropy sweep: walks every key, compares per-replica
  /// (modified, md5) digests across the key's reachable ring owners, and
  /// converges divergent copies/tombstones newest-wins.  Deterministic:
  /// keys are visited in sorted order.
  [[nodiscard]] RepairReport ReplicaScrub();
  /// Digest comparison only -- counts keys whose reachable ring owners
  /// disagree (missing copy, stale copy, or tombstone-superseded copy)
  /// without repairing or charging anything.  Test/bench oracle.
  [[nodiscard]] std::uint64_t DivergentKeyCount();

  RepairStats repair_stats() const EXCLUDES(repair_mu_);
  /// Background repair traffic priced so far (out-of-band; foreground
  /// OpMeters never include it).
  OpCost repair_cost() const EXCLUDES(repair_mu_);
  // Degraded-mode toggles are atomic: tests and the web API flip them
  // while the background merger is live on other threads.
  void SetReadRepair(bool on) { read_repair_.store(on); }
  void SetHintedHandoff(bool on) { hinted_handoff_.store(on); }

  // --- fault injection -----------------------------------------------------
  /// Fails every PUT whose key contains `substring` (before any replica
  /// is touched), modelling a proxy-level write outage for a key family.
  /// Pass "" to clear.  Tests use this to cut multi-object sequences at
  /// exact points (e.g. CreateAccount's commit-point ordering).
  void FailPutsMatching(std::string substring) EXCLUDES(fault_mu_) {
    H2MutexLock lock(fault_mu_);
    put_fault_ = std::move(substring);
  }

  // --- infrastructure access ---------------------------------------------
  StorageNode& node(std::size_t i) EXCLUDES(membership_mu_) {
    // Nodes are owned by stable unique_ptrs: the reference stays valid
    // after the pin drops, only the vector itself needs it.
    H2ReaderMutexLock membership(membership_mu_);
    return *nodes_[i];
  }
  std::size_t node_count() const EXCLUDES(membership_mu_) {
    H2ReaderMutexLock membership(membership_mu_);
    return nodes_.size();
  }
  const PartitionRing& ring() const { return ring_; }
  PartitionRing& ring() { return ring_; }
  LatencyModel& latency() { return latency_; }
  SimClock& clock() { return clock_; }

  /// Full byte-level dump of every storage node: keys in sorted order
  /// (StorageNode::ForEach guarantees that) with payload, sizes,
  /// timestamps and metadata.  Two clouds with equal dumps are
  /// bit-identical down to the virtual clock values their objects carry;
  /// this is the differential oracle the sharded engine and
  /// background-merger tests compare against the serial schedule.
  std::string DebugDump() const EXCLUDES(membership_mu_);

  /// Per-node object counts (load-balance experiments).
  std::vector<std::uint64_t> NodeObjectCounts() const
      EXCLUDES(membership_mu_);

 private:
  struct ReplicaProbe;

  // Unpinned bodies of the flat primitives.  The public wrappers and
  // ExecuteBatch take the membership epoch pin (the shared side of
  // membership_mu_) exactly once and then call these, so a single PUT
  // routes against one ring epoch just like a whole batch -- and a batch
  // never re-acquires the shared lock it already holds (recursive
  // shared_mutex acquisition is undefined behaviour).
  Status PutUnpinned(const std::string& key, ObjectValue value,
                     OpMeter& meter, PutOptions opts)
      REQUIRES_SHARED(membership_mu_);
  Result<ObjectValue> GetUnpinned(const std::string& key, OpMeter& meter)
      REQUIRES_SHARED(membership_mu_);
  Result<ObjectHead> HeadUnpinned(const std::string& key, OpMeter& meter)
      REQUIRES_SHARED(membership_mu_);
  Status DeleteUnpinned(const std::string& key, OpMeter& meter)
      REQUIRES_SHARED(membership_mu_);
  Status CopyUnpinned(const std::string& src, const std::string& dst,
                      OpMeter& meter) REQUIRES_SHARED(membership_mu_);

  /// Replica nodes for a key, reordered so replicas in `reader_zone` come
  /// first (read affinity).
  std::vector<StorageNode*> ReplicaNodes(const std::string& key,
                                         std::uint32_t reader_zone = 0) const
      REQUIRES_SHARED(membership_mu_);
  /// Inter-zone surcharge for touching `node` from `meter`'s zone.
  VirtualNanos ZoneSurcharge(const StorageNode& node,
                             const OpMeter& meter) const;
  /// Majority quorum clamped to the key's actual replica-set size, so a
  /// cluster with fewer nodes than replicas still has a reachable quorum.
  /// One helper for PUT/DELETE/COPY ack checks and the PUT zone
  /// surcharge, so they can never disagree again.
  int EffectiveQuorum(std::size_t replica_set_size) const;
  /// HEADs every replica of `key` (zone-affine order) and records status,
  /// freshness digest and tombstone per replica.
  std::vector<ReplicaProbe> ProbeReplicas(const std::string& key,
                                          std::uint32_t reader_zone)
      REQUIRES_SHARED(membership_mu_);
  /// Index of the newest live copy that beats every observed tombstone,
  /// ties broken by probe order; -1 when no live copy survives.
  static int PickNewest(const std::vector<ReplicaProbe>& probes);
  /// Pushes the winning copy (or, with no winner, the newest tombstone)
  /// to lagging replicas, charged on the repair meter.
  void ReadRepair(const std::string& key,
                  const std::vector<ReplicaProbe>& probes, int winner)
      REQUIRES_SHARED(membership_mu_);
  /// Queues hints on `holder` for every node in `missed` (PUT hint when
  /// `tombstone == 0`, DELETE hint otherwise).
  void QueueHints(const std::string& key, const ObjectValue& value,
                  VirtualNanos tombstone, StorageNode* holder,
                  const std::vector<StorageNode*>& missed)
      REQUIRES_SHARED(membership_mu_);
  /// Charges background repair traffic out-of-band (never the caller's
  /// meter, never the jitter RNG; advances virtual time only when
  /// `advance_clock` -- maintenance-driven repair runs on its own
  /// timeline, read-triggered repair rides the foreground op's window).
  /// Non-advancing charges land on a lock-free accumulator: they fire on
  /// nearly every read (the digest probes past the winner), and taking
  /// repair_mu_ there would serialize the whole sharded read side.
  void ChargeRepair(VirtualNanos cost, bool advance_clock);
  /// Virtual clock the meter's operations run against: the meter's bound
  /// shard clock domain when set, else the cloud's global clock.
  SimClock& ClockFor(const OpMeter& meter);
  /// Jitter draw for the meter's operations: the meter's bound per-shard
  /// stream when set (lock-free, deterministic per shard), else the
  /// global stream under latency_mu_.
  VirtualNanos JitterFor(OpMeter& meter, VirtualNanos base);
  /// Wave-prices a batch of repair pushes (hint replay, scrub) on the
  /// repair meter at the cloud's effective concurrency, same critical-path
  /// model as ExecuteBatch.  Returns the amount charged.
  VirtualNanos ChargeRepairBatch(const std::vector<OpMeter::BatchLane>& lanes,
                                 bool advance_clock);
  /// Shared walk behind ReplicaScrub (repair = true) and
  /// DivergentKeyCount (repair = false).
  RepairReport ScrubInternal(bool repair)
      EXCLUDES(membership_mu_, repair_mu_);
  /// True when the injected PUT fault matches `key` (reads put_fault_
  /// under fault_mu_; callers may race FailPutsMatching).
  bool PutFaultMatches(const std::string& key) const EXCLUDES(fault_mu_) {
    H2MutexLock lock(fault_mu_);
    return !put_fault_.empty() && key.find(put_fault_) != std::string::npos;
  }
  /// Moves every object to exactly its current replica set.
  MigrationReport RedistributeObjects() EXCLUDES(membership_mu_);

  // -- elastic-membership internals --
  /// Creates the next storage node (round-robin zone unless `zone_override`
  /// >= 0) and registers + publishes it on the ring.
  Result<DeviceId> StageAddNode(int zone_override, double weight)
      EXCLUDES(membership_mu_);
  /// Rebuilds the rebalance queue from scratch: every key whose holder set
  /// differs from its ring owner set, in sorted order.  Called after each
  /// membership publish; the enumeration scan is charged to the rebalance
  /// meter.
  void RebuildRebalanceQueue() EXCLUDES(membership_mu_, rebalance_mu_);
  /// Migrates one key to exactly its current owners (timestamp-preserving
  /// node-level Put/Delete); appends the priced pushes to `lanes`.
  void MigrateKey(const std::string& key, RebalanceStats& stats,
                  std::vector<OpMeter::BatchLane>& lanes)
      REQUIRES_SHARED(membership_mu_);
  /// Re-parks hints targeted at `removed` onto the keys' successor owners
  /// (hint-drain-on-remove: parked writes must not leak with the node).
  void MigrateHints(DeviceId removed) EXCLUDES(membership_mu_);
  /// Drains the rebalance queue to completion; returns the migration
  /// delta as the eager entry points' MigrationReport.
  MigrationReport DrainRebalance();
  /// Degraded-read fallback for a key still queued for rebalance: a
  /// publish may reassign every replica row of a partition at once, so
  /// none of the *current* owners holds the key until migration reaches
  /// it.  Sweeps the whole fleet for the newest live copy (tombstones
  /// win ties, same rule as MigrateKey).  Priced on the rebalance meter:
  /// the extra probes are migration debt, and foreground NotFound
  /// pricing must not depend on churn state.  Returns NotFound when the
  /// key is not pending or no copy survives.
  Result<ObjectValue> RebalanceFallbackGet(const std::string& key)
      REQUIRES_SHARED(membership_mu_);

  PartitionRing ring_;
  /// Guarded by the epoch pin: growth happens only under the exclusive
  /// side, every reader (primitives, accounting, monitors) holds the
  /// shared side.  The unique_ptr elements are stable, so a StorageNode*
  /// captured under the pin stays valid after it drops.
  std::vector<std::unique_ptr<StorageNode>> nodes_
      GUARDED_BY(membership_mu_);
  SimClock clock_;

  /// Guards only latency_'s *global* jitter RNG (JitterFor's fallback
  /// stream); the rest of LatencyModel is immutable after construction
  /// and read lock-free everywhere.
  H2Mutex latency_mu_;
  LatencyModel latency_;
  int replica_count_;
  int zone_count_;
  mutable H2Mutex fault_mu_;
  std::string put_fault_ GUARDED_BY(fault_mu_);  // empty = off
  std::atomic<bool> read_repair_;
  std::atomic<bool> hinted_handoff_;
  std::uint64_t io_concurrency_;  // CloudConfig::io_concurrency
  BackendConfig backend_config_;  // backend for ctor + AddStorageNode nodes
  std::size_t max_hints_per_node_;
  std::size_t max_rebalance_keys_per_step_;  // churn-rate knob

  mutable H2Mutex batch_mu_;
  BatchStats batch_stats_ GUARDED_BY(batch_mu_);

  /// Epoch pin: ExecuteBatch holds the shared side for its whole wave;
  /// membership publishes (ring mutation + nodes_ growth) take the
  /// exclusive side, so a topology flip waits for in-flight batches and a
  /// batch never routes half-old, half-new.  Ordering: membership_mu_ ->
  /// rebalance_mu_ (queue rebuild inside a publish); never the reverse.
  mutable H2SharedMutex membership_mu_;

  mutable H2Mutex rebalance_mu_;
  std::deque<std::string> rebalance_queue_ GUARDED_BY(rebalance_mu_);
  /// Membership of rebalance_queue_, for O(1) pending checks on the read
  /// path (never iterated, so unordered is safe).
  std::unordered_set<std::string> rebalance_pending_
      GUARDED_BY(rebalance_mu_);
  OpMeter rebalance_meter_ GUARDED_BY(rebalance_mu_);
  RebalanceStats rebalance_stats_ GUARDED_BY(rebalance_mu_);

  mutable H2Mutex repair_mu_;
  OpMeter repair_meter_ GUARDED_BY(repair_mu_);
  RepairStats repair_stats_ GUARDED_BY(repair_mu_);
  /// Read-path out-of-band probe/repair nanos (ChargeRepair with
  /// advance_clock = false); folded into repair_cost().  Commutative sum,
  /// so the total stays deterministic under any thread interleaving.
  std::atomic<VirtualNanos> oob_repair_nanos_{0};
};

}  // namespace h2
