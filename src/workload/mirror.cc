#include "workload/mirror.h"

#include <algorithm>

#include "fs/path.h"

namespace h2 {

Result<MirrorStats> MirrorTree(FileSystem& src, FileSystem& dst,
                               const std::string& src_dir,
                               const std::string& dst_dir) {
  MirrorStats stats;
  H2_ASSIGN_OR_RETURN(std::vector<DirEntry> entries,
                      src.List(src_dir, ListDetail::kNamesOnly));
  stats.source_cost += src.last_op();
  for (const DirEntry& entry : entries) {
    const std::string from = JoinPath(src_dir, entry.name);
    const std::string to = JoinPath(dst_dir, entry.name);
    if (entry.kind == EntryKind::kDirectory) {
      const Status made = dst.Mkdir(to);
      stats.dest_cost += dst.last_op();
      if (!made.ok() && made.code() != ErrorCode::kAlreadyExists) {
        return made;
      }
      ++stats.directories;
      H2_ASSIGN_OR_RETURN(MirrorStats sub, MirrorTree(src, dst, from, to));
      stats.directories += sub.directories;
      stats.files += sub.files;
      stats.bytes += sub.bytes;
      stats.source_cost += sub.source_cost;
      stats.dest_cost += sub.dest_cost;
    } else {
      H2_ASSIGN_OR_RETURN(FileBlob blob, src.ReadFile(from));
      stats.source_cost += src.last_op();
      stats.bytes += blob.logical_size;
      H2_RETURN_IF_ERROR(dst.WriteFile(to, std::move(blob)));
      stats.dest_cost += dst.last_op();
      ++stats.files;
    }
  }
  return stats;
}

Result<bool> TreesEqual(FileSystem& a, FileSystem& b,
                        const std::string& dir) {
  H2_ASSIGN_OR_RETURN(std::vector<DirEntry> ea,
                      a.List(dir, ListDetail::kNamesOnly));
  H2_ASSIGN_OR_RETURN(std::vector<DirEntry> eb,
                      b.List(dir, ListDetail::kNamesOnly));
  auto by_name = [](const DirEntry& x, const DirEntry& y) {
    return x.name < y.name;
  };
  std::sort(ea.begin(), ea.end(), by_name);
  std::sort(eb.begin(), eb.end(), by_name);
  if (ea.size() != eb.size()) return false;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].name != eb[i].name || ea[i].kind != eb[i].kind) return false;
    const std::string path = JoinPath(dir, ea[i].name);
    if (ea[i].kind == EntryKind::kDirectory) {
      H2_ASSIGN_OR_RETURN(bool sub, TreesEqual(a, b, path));
      if (!sub) return false;
    } else {
      H2_ASSIGN_OR_RETURN(FileBlob ba, a.ReadFile(path));
      H2_ASSIGN_OR_RETURN(FileBlob bb, b.ReadFile(path));
      if (ba.data != bb.data || ba.logical_size != bb.logical_size) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace h2
