// Synthetic filesystem workloads modeled on the paper's user study (§5.1).
//
// The evaluation hosted ~150 real users' filesystems: "light" ones with a
// few shallow directories and hundreds of files, and "heavy" ones with
// thousands of directories and up to millions of files; per-directory file
// counts from 0 to ~half a million, depths from 0 to 20+, file sizes from
// sub-KB configs through ~1 MB documents to multi-GB videos (~1 MB
// average object size, per Fig. 15).  This generator reproduces those
// distributional parameters with seeded determinism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "fs/filesystem.h"

namespace h2 {

struct TreeSpec {
  std::size_t file_count = 1000;
  std::size_t dir_count = 100;
  std::size_t max_depth = 8;
  /// Skew of directory popularity when placing files (higher = a few hot
  /// directories hold most files, like the half-million-file directories
  /// the paper observed).
  double dir_zipf_s = 1.1;
  std::uint64_t seed = 1;

  /// The paper's two user classes.
  static TreeSpec Light(std::uint64_t seed = 1);
  static TreeSpec Heavy(std::uint64_t seed = 1);
};

struct FileSpec {
  std::string path;
  std::uint64_t size = 0;
};

struct GeneratedTree {
  std::vector<std::string> dirs;  // creation order: parents before children
  std::vector<FileSpec> files;

  std::uint64_t total_bytes() const;
  std::size_t max_depth() const;
};

/// Samples a file size from the paper's mixture: ~50% tiny configs/text
/// (<1 KiB), ~40% medium documents, ~10% large media, a 0.1% tail of
/// multi-GB videos/backups; mean ~1 MiB.
std::uint64_t SampleFileSize(Rng& rng);

/// Generates directory and file paths for the spec.
GeneratedTree GenerateTree(const TreeSpec& spec);

/// Materializes the tree in a filesystem.  Large files carry a small
/// sample payload with their declared size (cluster/object.h).
/// `op_cost_out`, if non-null, accumulates the total metered cost.
Status PopulateTree(FileSystem& fs, const GeneratedTree& tree,
                    OpCost* op_cost_out = nullptr);

// --- builders used by the figure benches -----------------------------------

/// Creates `dir` and writes `n` files "f000000..." of `file_size` bytes
/// directly inside it (the directories of Figs. 7-11).
Status FillDirectory(FileSystem& fs, const std::string& dir, std::size_t n,
                     std::uint64_t file_size = 1024);

/// Creates a chain /d1/d2/.../dk and returns the deepest path (Fig. 13).
Result<std::string> MakeChain(FileSystem& fs, std::size_t depth);

}  // namespace h2
