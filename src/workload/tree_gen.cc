#include "workload/tree_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "fs/path.h"

namespace h2 {

TreeSpec TreeSpec::Light(std::uint64_t seed) {
  TreeSpec spec;
  spec.file_count = 300;
  spec.dir_count = 12;
  spec.max_depth = 3;
  spec.dir_zipf_s = 0.8;
  spec.seed = seed;
  return spec;
}

TreeSpec TreeSpec::Heavy(std::uint64_t seed) {
  TreeSpec spec;
  spec.file_count = 50'000;
  spec.dir_count = 2'000;
  spec.max_depth = 20;
  spec.dir_zipf_s = 1.2;
  spec.seed = seed;
  return spec;
}

std::uint64_t GeneratedTree::total_bytes() const {
  std::uint64_t total = 0;
  for (const FileSpec& f : files) total += f.size;
  return total;
}

std::size_t GeneratedTree::max_depth() const {
  std::size_t depth = 0;
  for (const auto& d : dirs) depth = std::max(depth, PathDepth(d));
  for (const auto& f : files) depth = std::max(depth, PathDepth(f.path));
  return depth;
}

std::uint64_t SampleFileSize(Rng& rng) {
  const double u = rng.NextDouble();
  auto log_uniform = [&rng](double lo, double hi) {
    const double l = std::log(lo), h = std::log(hi);
    return static_cast<std::uint64_t>(
        std::exp(l + rng.NextDouble() * (h - l)));
  };
  if (u < 0.50) return log_uniform(64, 1024);                  // configs/text
  if (u < 0.90) return log_uniform(1024, 1024.0 * 1024);       // documents
  if (u < 0.999) return log_uniform(1 << 20, 64.0 * (1 << 20));  // media
  return log_uniform(1024.0 * (1 << 20), 4096.0 * (1 << 20));  // videos/backups
}

GeneratedTree GenerateTree(const TreeSpec& spec) {
  Rng rng(spec.seed);
  GeneratedTree tree;
  tree.dirs.reserve(spec.dir_count);

  // Grow the directory tree by parenting each new directory under a random
  // existing one (bounded by max_depth); preferential attachment toward
  // shallow directories keeps realistic shapes.
  std::vector<std::size_t> depth_of;  // parallel to tree.dirs; root=0 implicit
  char buf[64];
  for (std::size_t i = 0; i < spec.dir_count; ++i) {
    std::string parent = "/";
    std::size_t parent_depth = 0;
    if (!tree.dirs.empty() && rng.NextDouble() < 0.8) {
      // Bias toward recently created (deeper) directories 30% of the time,
      // otherwise uniform.
      std::size_t idx = rng.Chance(0.3)
                            ? tree.dirs.size() - 1 -
                                  rng.Below(std::min<std::size_t>(
                                      tree.dirs.size(), 8))
                            : rng.Below(tree.dirs.size());
      if (depth_of[idx] < spec.max_depth - 1) {
        parent = tree.dirs[idx];
        parent_depth = depth_of[idx];
      }
    }
    std::snprintf(buf, sizeof(buf), "dir%05zu", i);
    tree.dirs.push_back(JoinPath(parent, buf));
    depth_of.push_back(parent_depth + 1);
  }

  // Place files into directories with Zipf-skewed popularity.
  const std::size_t buckets = tree.dirs.size() + 1;  // +1 for the root
  ZipfSampler zipf(buckets, spec.dir_zipf_s);
  tree.files.reserve(spec.file_count);
  for (std::size_t i = 0; i < spec.file_count; ++i) {
    const std::size_t bucket = zipf.Sample(rng);
    const std::string& dir =
        bucket == 0 ? std::string("/")
                    : tree.dirs[bucket - 1];  // NOLINT: ref lifetime ok
    std::snprintf(buf, sizeof(buf), "file%06zu.dat", i);
    tree.files.push_back(FileSpec{JoinPath(dir, buf), SampleFileSize(rng)});
  }
  return tree;
}

namespace {

/// Sample payload for a synthetic file: small, content keyed to the path
/// so reads can verify integrity.
FileBlob SyntheticBlob(const std::string& path, std::uint64_t size) {
  std::string sample = "synthetic:" + path;
  if (sample.size() > size) sample.resize(std::max<std::uint64_t>(size, 1));
  return FileBlob::Synthetic(std::move(sample), size);
}

}  // namespace

Status PopulateTree(FileSystem& fs, const GeneratedTree& tree,
                    OpCost* op_cost_out) {
  OpCost total;
  for (const std::string& dir : tree.dirs) {
    H2_RETURN_IF_ERROR(fs.Mkdir(dir));
    total += fs.last_op();
  }
  for (const FileSpec& file : tree.files) {
    H2_RETURN_IF_ERROR(fs.WriteFile(file.path, SyntheticBlob(file.path,
                                                             file.size)));
    total += fs.last_op();
  }
  if (op_cost_out != nullptr) *op_cost_out = total;
  return Status::Ok();
}

Status FillDirectory(FileSystem& fs, const std::string& dir, std::size_t n,
                     std::uint64_t file_size) {
  H2_RETURN_IF_ERROR(fs.Mkdir(dir));
  char buf[64];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "f%06zu", i);
    const std::string path = JoinPath(dir, buf);
    H2_RETURN_IF_ERROR(
        fs.WriteFile(path, SyntheticBlob(path, file_size)));
  }
  return Status::Ok();
}

Result<std::string> MakeChain(FileSystem& fs, std::size_t depth) {
  std::string path = "/";
  char buf[32];
  for (std::size_t i = 0; i < depth; ++i) {
    std::snprintf(buf, sizeof(buf), "d%02zu", i);
    path = JoinPath(path, buf);
    H2_RETURN_IF_ERROR(fs.Mkdir(path));
  }
  return path;
}

}  // namespace h2
