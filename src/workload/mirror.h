// Cross-system filesystem mirroring.
//
// Because every system in this repository -- H2Cloud and all Table-1
// baselines -- speaks the same FileSystem interface, a whole tree can be
// copied between ANY two of them through public operations only.  This is
// what powers the backup/restore example (live H2Cloud filesystem backed
// up into a Cumulus compressed snapshot and restored after a disaster)
// and the cross-system equivalence checks in tests.
#pragma once

#include <string>

#include "common/status.h"
#include "fs/filesystem.h"

namespace h2 {

struct MirrorStats {
  std::size_t directories = 0;
  std::size_t files = 0;
  std::uint64_t bytes = 0;
  OpCost source_cost;  // read-side simulated cost
  OpCost dest_cost;    // write-side simulated cost
};

/// Recursively copies `src_dir` in `src` onto `dst_dir` in `dst`
/// (both must exist; contents are merged, existing files overwritten).
Result<MirrorStats> MirrorTree(FileSystem& src, FileSystem& dst,
                               const std::string& src_dir = "/",
                               const std::string& dst_dir = "/");

/// True when the two filesystems' observable trees (names, kinds, file
/// contents) are identical under `dir`.
Result<bool> TreesEqual(FileSystem& a, FileSystem& b,
                        const std::string& dir = "/");

}  // namespace h2
