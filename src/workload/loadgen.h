// Closed-loop Zipf load generator for the sharded engine.
//
// Builds per-shard workloads: each shard (one account, one client) gets a
// private directory tree and an op stream whose targets follow a Zipf
// popularity law -- a few hot directories and files absorb most
// operations, the skew the paper's personal-cloud traces show (§5.1).
// "Closed loop" in the queueing sense: the engine replays each shard's
// stream with exactly one op in flight per shard, issuing the next op
// the moment the previous completes, so offered load scales with the
// thread count rather than with a target arrival rate.
//
// Generation is pure: every shard's setup and op stream is a function of
// (spec, shard index) alone, drawn from a per-shard SplitMix64-seeded
// stream.  The same spec therefore produces byte-identical plans whether
// the engine later replays them on 1 thread or 16 -- the precondition
// for the serial differential oracle.  (This layer only builds traces;
// engine/sharded_engine.h replays them.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace h2 {

struct LoadgenSpec {
  /// Shards (= accounts = closed-loop clients).  Must not exceed the
  /// cloud's middleware count when handed to RunSharded.
  std::size_t shards = 8;
  std::size_t dirs_per_shard = 4;
  std::size_t files_per_dir = 32;
  /// Measured operations per shard (setup ops are separate).
  std::size_t ops_per_shard = 400;
  /// Zipf skew over directories and files (1.1 ~ web-like popularity).
  double zipf_s = 1.1;
  /// Relative op-mix weights; the default is the LIST/GET-heavy read mix
  /// the throughput sweep measures (structure-stable: writes overwrite
  /// existing files, so every generated op succeeds at replay time).
  double stat_weight = 35;
  double read_weight = 25;
  double list_weight = 25;
  double write_weight = 15;
  std::uint64_t file_size = 4 * 1024;
  std::uint64_t seed = 1469;
};

/// One shard's workload: `setup` populates the tree (mkdirs, then file
/// writes), `ops` is the measured Zipf stream.  Feed both phases to
/// RunSharded as {account, trace} shard plans -- setup first,
/// maintenance to quiescence, then ops.
struct ShardLoad {
  std::string account;        // "u<shard index>"
  std::vector<TraceOp> setup;
  std::vector<TraceOp> ops;
};

std::vector<ShardLoad> BuildZipfLoad(const LoadgenSpec& spec);

}  // namespace h2
