#include "workload/trace.h"

#include <algorithm>
#include <cstdio>

#include "fs/path.h"

namespace h2 {

std::string_view TraceOpName(TraceOpKind kind) {
  switch (kind) {
    case TraceOpKind::kStat: return "STAT";
    case TraceOpKind::kRead: return "READ";
    case TraceOpKind::kWrite: return "WRITE";
    case TraceOpKind::kMkdir: return "MKDIR";
    case TraceOpKind::kRmdir: return "RMDIR";
    case TraceOpKind::kMove: return "MOVE";
    case TraceOpKind::kRename: return "RENAME";
    case TraceOpKind::kList: return "LIST";
    case TraceOpKind::kCopy: return "COPY";
    case TraceOpKind::kRemove: return "REMOVE";
    case TraceOpKind::kListAt: return "LIST@V";
    case TraceOpKind::kSnapshotClone: return "CLONE";
  }
  return "?";
}

namespace {

/// In-memory namespace model the generator evolves so that every emitted
/// operation is valid when replayed in order.
class NamespaceModel {
 public:
  explicit NamespaceModel(const GeneratedTree& tree) {
    dirs_.push_back("/");
    for (const auto& d : tree.dirs) dirs_.push_back(d);
    for (const auto& f : tree.files) files_.push_back(f.path);
  }

  bool has_files() const { return !files_.empty(); }
  std::size_t dir_count() const { return dirs_.size(); }

  const std::string& RandomDir(Rng& rng) const {
    return dirs_[rng.Below(dirs_.size())];
  }
  const std::string& RandomFile(Rng& rng) const {
    return files_[rng.Below(files_.size())];
  }
  /// A non-root directory, or empty if none exists.
  std::string RandomRemovableDir(Rng& rng) const {
    if (dirs_.size() <= 1) return {};
    return dirs_[1 + rng.Below(dirs_.size() - 1)];
  }

  bool Exists(const std::string& path) const {
    return std::find(dirs_.begin(), dirs_.end(), path) != dirs_.end() ||
           std::find(files_.begin(), files_.end(), path) != files_.end();
  }

  std::string FreshName(Rng& rng, const std::string& dir,
                        std::string_view prefix) {
    char buf[64];
    for (;;) {
      std::snprintf(buf, sizeof(buf), "%s%06llu", std::string(prefix).c_str(),
                    static_cast<unsigned long long>(rng.Below(1'000'000)));
      std::string candidate = JoinPath(dir, buf);
      if (!Exists(candidate)) return candidate;
    }
  }

  void AddFile(std::string path) { files_.push_back(std::move(path)); }
  void AddDir(std::string path) { dirs_.push_back(std::move(path)); }

  void RemoveFilePath(const std::string& path) {
    files_.erase(std::remove(files_.begin(), files_.end(), path),
                 files_.end());
  }

  void RemoveSubtree(const std::string& dir) {
    auto within = [&dir](const std::string& p) { return IsWithin(p, dir); };
    dirs_.erase(std::remove_if(dirs_.begin(), dirs_.end(), within),
                dirs_.end());
    files_.erase(std::remove_if(files_.begin(), files_.end(), within),
                 files_.end());
  }

  void MovePath(const std::string& from, const std::string& to) {
    for (auto& f : files_) {
      if (f == from) {
        f = to;
      } else if (IsWithin(f, from)) {
        f = to + f.substr(from.size());
      }
    }
    for (auto& d : dirs_) {
      if (d == from) {
        d = to;
      } else if (IsWithin(d, from)) {
        d = to + d.substr(from.size());
      }
    }
  }

  void CopyFilePath(const std::string& from, const std::string& to) {
    (void)from;
    files_.push_back(to);
  }

  /// A clone materializes (in the model -- lazily in H2) a full copy of
  /// the `from` subtree under `to`, so later operations can land inside
  /// the clone: that is what drives copy-on-write at replay time.
  void ClonePath(const std::string& from, const std::string& to) {
    std::vector<std::string> new_dirs{to};
    std::vector<std::string> new_files;
    for (const auto& d : dirs_) {
      if (IsWithin(d, from) && d != from) {
        new_dirs.push_back(to + d.substr(from.size()));
      }
    }
    for (const auto& f : files_) {
      if (IsWithin(f, from)) new_files.push_back(to + f.substr(from.size()));
    }
    dirs_.insert(dirs_.end(), new_dirs.begin(), new_dirs.end());
    files_.insert(files_.end(), new_files.begin(), new_files.end());
  }

 private:
  std::vector<std::string> dirs_;
  std::vector<std::string> files_;
};

}  // namespace

std::vector<TraceOp> GenerateTrace(const GeneratedTree& tree,
                                   std::size_t op_count, const TraceMix& mix,
                                   std::uint64_t seed) {
  Rng rng(seed);
  NamespaceModel model(tree);
  std::vector<TraceOp> trace;
  trace.reserve(op_count);

  const double weights[] = {mix.stat,  mix.read,   mix.write,  mix.mkdir,
                            mix.rmdir, mix.move,   mix.rename, mix.list,
                            mix.copy,  mix.remove, mix.list_at,
                            mix.snapshot_clone};
  const TraceOpKind kinds[] = {
      TraceOpKind::kStat,   TraceOpKind::kRead,   TraceOpKind::kWrite,
      TraceOpKind::kMkdir,  TraceOpKind::kRmdir,  TraceOpKind::kMove,
      TraceOpKind::kRename, TraceOpKind::kList,   TraceOpKind::kCopy,
      TraceOpKind::kRemove, TraceOpKind::kListAt,
      TraceOpKind::kSnapshotClone};
  double total_weight = 0;
  for (double w : weights) total_weight += w;

  while (trace.size() < op_count) {
    double pick = rng.NextDouble() * total_weight;
    std::size_t k = 0;
    while (k + 1 < std::size(weights) && pick >= weights[k]) {
      pick -= weights[k];
      ++k;
    }
    TraceOp op;
    op.kind = kinds[k];
    switch (op.kind) {
      case TraceOpKind::kStat:
      case TraceOpKind::kRead:
        if (!model.has_files()) continue;
        op.path = model.RandomFile(rng);
        break;
      case TraceOpKind::kWrite: {
        const std::string& dir = model.RandomDir(rng);
        op.path = model.FreshName(rng, dir, "w");
        op.size = SampleFileSize(rng);
        model.AddFile(op.path);
        break;
      }
      case TraceOpKind::kMkdir: {
        const std::string& dir = model.RandomDir(rng);
        op.path = model.FreshName(rng, dir, "mk");
        model.AddDir(op.path);
        break;
      }
      case TraceOpKind::kRmdir: {
        op.path = model.RandomRemovableDir(rng);
        if (op.path.empty()) continue;
        model.RemoveSubtree(op.path);
        break;
      }
      case TraceOpKind::kMove: {
        if (!model.has_files()) continue;
        op.path = model.RandomFile(rng);  // file moves keep the model simple
        const std::string& dir = model.RandomDir(rng);
        op.path2 = model.FreshName(rng, dir, "mv");
        if (IsWithin(op.path2, op.path)) continue;
        model.MovePath(op.path, op.path2);
        break;
      }
      case TraceOpKind::kRename: {
        if (!model.has_files()) continue;
        op.path = model.RandomFile(rng);
        std::string renamed =
            model.FreshName(rng, ParentPath(op.path), "rn");
        op.path2 = std::string(BaseName(renamed));
        model.MovePath(op.path, renamed);
        break;
      }
      case TraceOpKind::kList:
        op.path = model.RandomDir(rng);
        break;
      case TraceOpKind::kCopy: {
        if (!model.has_files()) continue;
        op.path = model.RandomFile(rng);
        const std::string& dir = model.RandomDir(rng);
        op.path2 = model.FreshName(rng, dir, "cp");
        model.CopyFilePath(op.path, op.path2);
        break;
      }
      case TraceOpKind::kRemove:
        if (!model.has_files()) continue;
        op.path = model.RandomFile(rng);
        model.RemoveFilePath(op.path);
        break;
      case TraceOpKind::kListAt:
        op.path = model.RandomDir(rng);
        break;
      case TraceOpKind::kSnapshotClone: {
        op.path = model.RandomRemovableDir(rng);
        if (op.path.empty()) continue;
        const std::string& dir = model.RandomDir(rng);
        op.path2 = model.FreshName(rng, dir, "sn");
        // A clone into its own source subtree is rejected at replay time;
        // keep every generated op valid instead.
        if (IsWithin(op.path2, op.path)) continue;
        model.ClonePath(op.path, op.path2);
        break;
      }
    }
    trace.push_back(std::move(op));
  }
  return trace;
}

Status ApplyTraceOp(FileSystem& fs, const TraceOp& op) {
  switch (op.kind) {
    case TraceOpKind::kStat:
      return fs.Stat(op.path).status();
    case TraceOpKind::kRead:
      return fs.ReadFile(op.path).status();
    case TraceOpKind::kWrite: {
      std::string sample = "trace:" + op.path;
      return fs.WriteFile(op.path,
                          FileBlob::Synthetic(std::move(sample), op.size));
    }
    case TraceOpKind::kMkdir:
      return fs.Mkdir(op.path);
    case TraceOpKind::kRmdir:
      return fs.Rmdir(op.path);
    case TraceOpKind::kMove:
      return fs.Move(op.path, op.path2);
    case TraceOpKind::kRename:
      return fs.Rename(op.path, op.path2);
    case TraceOpKind::kList:
      return fs.List(op.path, ListDetail::kDetailed).status();
    case TraceOpKind::kCopy:
      return fs.Copy(op.path, op.path2);
    case TraceOpKind::kRemove:
      return fs.RemoveFile(op.path);
    case TraceOpKind::kListAt: {
      Result<VirtualNanos> version = fs.DirVersion(op.path);
      if (!version.ok()) return version.status();
      return fs.ListAt(op.path, *version, ListDetail::kDetailed).status();
    }
    case TraceOpKind::kSnapshotClone:
      return fs.SnapshotClone(op.path, op.path2);
  }
  return Status::InvalidArgument("unknown trace op kind");
}

ReplayStats ReplayTrace(FileSystem& fs, std::span<const TraceOp> trace) {
  ReplayStats stats;
  for (const TraceOp& op : trace) {
    const Status status = ApplyTraceOp(fs, op);
    ++stats.ops;
    if (!status.ok()) ++stats.failures;
    const OpCost& cost = fs.last_op();
    stats.total_cost += cost;
    const auto idx = static_cast<std::size_t>(op.kind);
    stats.per_kind_ms[idx] += cost.elapsed_ms();
    stats.per_kind_count[idx] += 1;
  }
  return stats;
}

}  // namespace h2
