#include "workload/loadgen.h"

#include <cassert>
#include <cstdio>

#include "common/rng.h"

namespace h2 {
namespace {

std::string DirPath(std::size_t dir) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/d%03zu", dir);
  return buf;
}

std::string FilePath(std::size_t dir, std::size_t file) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "/d%03zu/f%04zu", dir, file);
  return buf;
}

}  // namespace

std::vector<ShardLoad> BuildZipfLoad(const LoadgenSpec& spec) {
  assert(spec.dirs_per_shard > 0);
  assert(spec.files_per_dir > 0);
  // The samplers' CDFs depend only on (n, s): shared across shards,
  // sampled with each shard's private stream.
  const ZipfSampler dir_zipf(spec.dirs_per_shard, spec.zipf_s);
  const ZipfSampler file_zipf(spec.files_per_dir, spec.zipf_s);
  const double total_weight = spec.stat_weight + spec.read_weight +
                              spec.list_weight + spec.write_weight;

  std::vector<ShardLoad> loads;
  loads.reserve(spec.shards);
  for (std::size_t s = 0; s < spec.shards; ++s) {
    ShardLoad load;
    load.account = "u" + std::to_string(s);

    // Setup: the tree every measured op targets.  Mkdirs first, then
    // files, so replay order alone keeps every op valid.
    for (std::size_t d = 0; d < spec.dirs_per_shard; ++d) {
      load.setup.push_back(TraceOp{TraceOpKind::kMkdir, DirPath(d), "", 0});
    }
    for (std::size_t d = 0; d < spec.dirs_per_shard; ++d) {
      for (std::size_t f = 0; f < spec.files_per_dir; ++f) {
        load.setup.push_back(
            TraceOp{TraceOpKind::kWrite, FilePath(d, f), "", spec.file_size});
      }
    }

    // Measured stream: Zipf-hot directories and files, structure-stable
    // (writes overwrite setup files; no creates/removes), so the stream
    // never depends on replay outcomes.
    Rng rng(SplitMix64(spec.seed + 0x10ad'0000 + s).Next());
    load.ops.reserve(spec.ops_per_shard);
    for (std::size_t i = 0; i < spec.ops_per_shard; ++i) {
      const double pick = rng.NextDouble() * total_weight;
      const std::size_t dir = dir_zipf.Sample(rng);
      TraceOp op;
      if (pick < spec.stat_weight) {
        op.kind = TraceOpKind::kStat;
        op.path = FilePath(dir, file_zipf.Sample(rng));
      } else if (pick < spec.stat_weight + spec.read_weight) {
        op.kind = TraceOpKind::kRead;
        op.path = FilePath(dir, file_zipf.Sample(rng));
      } else if (pick < spec.stat_weight + spec.read_weight +
                            spec.list_weight) {
        op.kind = TraceOpKind::kList;
        op.path = DirPath(dir);
      } else {
        op.kind = TraceOpKind::kWrite;
        op.path = FilePath(dir, file_zipf.Sample(rng));
        op.size = spec.file_size;
      }
      load.ops.push_back(std::move(op));
    }
    loads.push_back(std::move(load));
  }
  return loads;
}

}  // namespace h2
