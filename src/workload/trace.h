// Operation traces: the replayed user manipulations of §5.1 ("the users'
// manipulations cover most of the POSIX-like file and directory
// operations").  A trace is generated against a materialized tree and can
// be replayed against any FileSystem implementation, which is how the
// cross-system comparisons keep workloads identical.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "fs/filesystem.h"
#include "workload/tree_gen.h"

namespace h2 {

enum class TraceOpKind {
  kStat,
  kRead,
  kWrite,
  kMkdir,
  kRmdir,
  kMove,
  kRename,
  kList,
  kCopy,
  kRemove,
  /// Time-travel LIST: resolve the directory's DirVersion, then ListAt
  /// that version (the versioned read path of DESIGN.md §13).
  kListAt,
  /// SnapshotClone of a directory subtree; unversioned systems replay it
  /// as a materialized Copy.
  kSnapshotClone,
};

constexpr std::size_t kTraceOpKinds = 12;

std::string_view TraceOpName(TraceOpKind kind);

struct TraceOp {
  TraceOpKind kind = TraceOpKind::kStat;
  std::string path;   // primary operand
  std::string path2;  // destination for Move/Copy; new name for Rename
  std::uint64_t size = 0;  // for Write
};

/// Relative operation frequencies.  Defaults skew toward reads and
/// stats with occasional structural changes, a typical personal-cloud mix.
struct TraceMix {
  double stat = 30;
  double read = 25;
  double write = 20;
  double list = 12;
  double mkdir = 4;
  double move = 3;
  double rename = 2;
  double copy = 1.5;
  double remove = 2;
  double rmdir = 0.5;
  /// Versioned-read and snapshot weights default to 0 so pre-versioning
  /// workloads (and their golden cost numbers) are untouched; the
  /// snapshot benches and the sharded-oracle suites opt in.
  double list_at = 0;
  double snapshot_clone = 0;
};

/// Generates `op_count` operations referencing (and evolving) `tree`.
/// The generator tracks namespace changes so every emitted operation is
/// valid at replay time when applied in order from the populated tree.
std::vector<TraceOp> GenerateTrace(const GeneratedTree& tree,
                                   std::size_t op_count, const TraceMix& mix,
                                   std::uint64_t seed);

struct ReplayStats {
  std::size_t ops = 0;
  std::size_t failures = 0;
  OpCost total_cost;
  /// Per-kind aggregate operation time (ms), indexed by TraceOpKind.
  std::vector<double> per_kind_ms = std::vector<double>(kTraceOpKinds, 0.0);
  std::vector<std::size_t> per_kind_count =
      std::vector<std::size_t>(kTraceOpKinds, 0);
};

/// Applies one trace operation to `fs` and returns its status.  The
/// serial replay loop and the sharded engine both dispatch through this
/// single function, which is what makes the two executions comparable
/// op-for-op: a threaded run issues exactly the calls a serial replay of
/// the same trace would.
Status ApplyTraceOp(FileSystem& fs, const TraceOp& op);

/// Replays a trace; failures (e.g. AlreadyExists races) are counted, not
/// fatal.  Returns per-kind cost statistics.
ReplayStats ReplayTrace(FileSystem& fs, std::span<const TraceOp> trace);

}  // namespace h2
